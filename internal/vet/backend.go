package vet

import (
	"carsgo/internal/callgraph"
	"carsgo/internal/cars"
	"carsgo/internal/isa"
)

// Cross-backend spill-policy lattice (DESIGN.md §12): static per-level
// cost and occupancy rows for the three spill backends —
//
//   - cars:    register stacks; spills are renames, no smem traffic
//   - smem:    RegDem-style shared-memory spilling; every spill pays
//              the banked shared path and the frame taxes occupancy
//   - rfcache: a per-thread register window absorbing the hottest
//              (stack-top) spill slots; the rest falls through to smem
//
// Each backend's occupancy rows mirror the simulator's admission rule
// exactly (register-limited CARS, smem-limited shared spilling,
// window-register-limited RF-cache), and the per-level traffic bounds
// reuse the interprocedural cost algebra of cost.go with two backend
// refinements derived from the sync pass's affine access lattice:
// static bank-conflict multipliers per LDS/STS site, and a static
// spill-depth coverage map for the RF-cache window.

// smemBankCount mirrors the simulator's shared-memory geometry: 32
// banks of 4-byte words, the worst-case serialisation of one access.
const smemBankCount = 32

// gcdBanks returns gcd(s, 32) for a positive word stride s: the number
// of distinct words a full warp drives into one bank when lanes stride
// by s words (lanes l and l+32/gcd collide in the same bank at
// distinct words).
func gcdBanks(s int64) int64 {
	a, b := s%smemBankCount, int64(smemBankCount)
	if a < 0 {
		a = -a
	}
	if a == 0 {
		return smemBankCount
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// bankMult is the static bank-conflict multiplier of one shared-memory
// access site: an upper bound on the serialised transactions any
// execution of the site costs (max over banks of distinct words among
// the active lanes; same-word lanes broadcast). A lane-affine address
// with byte stride cL costs gcd(cL/4, 32); a uniform address
// broadcasts for 1. Spill sites whose lattice form degraded still
// stride by exactly the per-thread frame — the ABI's R0 discipline
// (only uniform IADD adjustments, enforced by the mode-mismatch
// checks) guarantees it — so they fall back to the frame stride rather
// than the full 32.
func bankMult(addr aval, spillStrideBytes int64, spill bool) int64 {
	stride := int64(-1)
	switch addr.kind {
	case avUniform:
		stride = 0
	case avAffine:
		stride = addr.cL
	default:
		if spill {
			stride = spillStrideBytes
		}
	}
	if stride < 0 && spill {
		stride = spillStrideBytes
	}
	switch {
	case stride == 0:
		return 1
	case stride > 0 && stride%4 == 0:
		return gcdBanks(stride / 4)
	case stride < 0 && stride%4 == 0:
		return gcdBanks(-stride / 4)
	}
	return smemBankCount
}

// fillTxnCosts charges every recorded shared-memory site (cost.go's
// smems) at its bank-conflict multiplier from the sync pass's address
// lattice, filling the late funcCost accumulators the backend rows and
// the SharedTxns bound are built from. Sites the sync pass never
// reached charge the worst case.
func fillTxnCosts(p *isa.Program, sums []*funcSummary, sp *syncProgram) {
	spillStride := int64(p.SmemSpillPerThread)
	for fi := range sums {
		fc := &sums[fi].cost
		if len(fc.smems) == 0 {
			continue
		}
		mults := map[int]int64{}
		if fi < len(sp.funcs) {
			for _, t := range sp.funcs[fi].txs {
				if m := bankMult(t.addr, spillStride, t.spill); m > mults[t.index] {
					mults[t.index] = m
				}
			}
		}
		for _, s := range fc.smems {
			m, ok := mults[s.index]
			if !ok {
				m = smemBankCount
				if s.spill {
					m = bankMult(topVal(), spillStride, true)
				}
			}
			charge := func(cv *costVal, n int64) {
				if s.loopDepth < 0 {
					cv.unbounded = true
					cv.terms = nil
				} else {
					cv.addAt(s.loopDepth, satMul(n, max64(1, s.mult)))
				}
			}
			charge(&fc.sharedTxns, m)
			if s.spill {
				charge(&fc.spillTxns, m)
				charge(&fc.spillSmemByte, 4)
			} else {
				charge(&fc.userTxns, m)
			}
		}
	}
}

// spillDepths computes, per function reachable from the kernel, the
// worst-case cumulative spill-frame depth in bytes: the maximum over
// call paths of the enclosing activations' shared-spill frames,
// including the function's own (4 bytes per callee-saved register,
// matching abi.sizeSmemSpill). Every spill access a function executes
// sits at most this deep below the per-thread frame top, so a window
// of at least this many bytes statically absorbs all of them. -1 marks
// unbounded depth (recursion).
func spillDepths(an *callgraph.Analysis) map[int]int {
	depths := map[int]int{}
	if an.Cyclic {
		for fi := range an.Nodes {
			depths[fi] = -1
		}
		return depths
	}
	var walk func(fi, acc int)
	walk = func(fi, acc int) {
		n := an.Nodes[fi]
		c := acc + 4*n.Func.CalleeSaved
		if d, ok := depths[fi]; ok && d >= c {
			return // already visited at least this deep: no new info below
		}
		depths[fi] = c
		for _, ti := range n.Callees {
			walk(ti, c)
		}
	}
	walk(an.Root, 0)
	return depths
}

// kernelResidual runs the interprocedural path algebra of kernelCosts
// over the residual shared-memory traffic: user transactions always,
// spill bytes and spill transactions only for functions the coverage
// predicate does not absorb. Recursion tops out at unbounded.
func kernelResidual(p *isa.Program, sums []*funcSummary, root int, covered func(fi int) bool) (spillBytes, txns costVal) {
	type resid struct{ spillBytes, txns costVal }
	memo := map[int]*resid{}
	onStack := map[int]bool{}
	var total func(fi int) resid
	total = func(fi int) resid {
		if t, ok := memo[fi]; ok {
			return *t
		}
		if onStack[fi] {
			top := costVal{unbounded: true}
			return resid{top, top}
		}
		onStack[fi] = true
		defer delete(onStack, fi)
		f := p.Funcs[fi]
		s := sums[fi].cost
		var t resid
		t.txns.add(s.userTxns)
		if !covered(fi) {
			t.spillBytes.add(s.spillSmemByte)
			t.txns.add(s.spillTxns)
		}
		for _, site := range s.sites {
			var cands []int
			if site.indirect < 0 {
				cands = []int{f.Code[site.index].Callee}
			} else if site.indirect < len(f.IndirectTargets) {
				cands = f.IndirectTargets[site.indirect]
			}
			var callee resid
			for ci, ti := range cands {
				ct := total(ti)
				if ci == 0 {
					callee = ct
					callee.spillBytes.terms = append([]int64(nil), callee.spillBytes.terms...)
					callee.txns.terms = append([]int64(nil), callee.txns.terms...)
				} else {
					callee.spillBytes.maxWith(ct.spillBytes)
					callee.txns.maxWith(ct.txns)
				}
			}
			if len(cands) == 0 {
				continue
			}
			t.spillBytes.add(callee.spillBytes.shiftScaled(site.loopDepth, site.mult))
			t.txns.add(callee.txns.shiftScaled(site.loopDepth, site.mult))
		}
		cp := t
		memo[fi] = &cp
		return t
	}
	r := total(root)
	return r.spillBytes, r.txns
}

// residEval carries the interprocedural state needed to evaluate a
// kernel's residual traffic bounds at any RF-cache window after
// Report has returned. Plain data only — no closures — so two reports
// built from identical programs compare reflect.DeepEqual.
type residEval struct {
	p      *isa.Program
	sums   []*funcSummary
	root   int
	depths map[int]int
}

// at returns the residual spill-byte and transaction bounds with an
// RF-cache window of windowWords words (<= 0: no absorption, the pure
// shared-spill backend).
func (r *residEval) at(windowWords int) (spillBytes, txns CostBound) {
	covered := func(fi int) bool {
		if windowWords <= 0 {
			return false
		}
		d, ok := r.depths[fi]
		return ok && d >= 0 && d <= 4*windowWords
	}
	sb, tx := kernelResidual(r.p, r.sums, r.root, covered)
	return sb.bound(), tx.bound()
}

// attachResiduals stashes a per-kernel residual evaluator on each
// KernelReport (the unexported resid field) and fills the kernel-level
// SharedTxns bound. Report calls it once the sync pass has populated
// the txn accumulators.
func attachResiduals(rep *ProgramReport, p *isa.Program, sums []*funcSummary) {
	for i := range rep.Kernels {
		kr := &rep.Kernels[i]
		root, ok := p.Kernels[kr.Kernel]
		if !ok {
			continue
		}
		an, err := callgraph.Analyze(p, kr.Kernel)
		if err != nil {
			continue
		}
		kr.resid = &residEval{p: p, sums: sums, root: root, depths: spillDepths(an)}
		if kr.Perf != nil {
			_, kr.Perf.Cost.SharedTxns = kr.resid.at(-1)
		}
	}
}

// BackendLevel is one (backend, level) cell of the spill-policy
// lattice: the admission-exact occupancy row plus the backend's static
// traffic refinement at that level. SpillSmemBytes bounds the residual
// spill traffic that reaches shared memory (zero under CARS, full
// under pure shared spilling, the statically-uncovered remainder under
// an RF-cache window); SmemTxns bounds the bank-serialised
// transactions (user accesses plus residual spills). Covered marks a
// level with no residual spill path at all: a trap-free CARS level, or
// a window absorbing every reachable spill site.
type BackendLevel struct {
	LevelOccupancy
	SpillSmemBytes CostBound `json:"spillSmemBytes"`
	SmemTxns       CostBound `json:"smemTxns"`
	Covered        bool      `json:"covered"`
}

// BackendPerf is one backend's column of the lattice for a kernel: its
// level ladder and the advisor's pick within it.
type BackendPerf struct {
	Backend  string         `json:"backend"`
	HighFree bool           `json:"highFree,omitempty"`
	Levels   []BackendLevel `json:"levels"`
	Advice   *Advice        `json:"advice,omitempty"`
}

// windowPlan builds the RF-cache window ladder for one kernel: Low is
// the largest single spill frame (one activation's saves stay in
// registers), doubling up to High, the full interprocedural frame
// depth (every spill absorbed). Degenerate zero-spill kernels get a
// single zero-word level.
func windowPlan(m MachineParams, p *isa.Program, an *callgraph.Analysis, l LaunchShape) *cars.Plan {
	maxFrame := 0
	for _, n := range an.Nodes {
		if cs := n.Func.CalleeSaved; cs > maxFrame {
			maxFrame = cs
		}
	}
	return cars.NewWindowPlan(an.MaxRegs, maxFrame, p.SmemSpillPerThread/4, m.maxWarpsOther(l), m.RegFileSlots)
}

// WindowPlanFor builds the RF-cache window ladder AnalyzePerf models
// for one launch shape — exported so the dynamic differential
// (internal/san) can force the simulator through the very same
// windows.
func (m MachineParams) WindowPlanFor(p *isa.Program, l LaunchShape) (*cars.Plan, error) {
	an, err := callgraph.Analyze(p, l.Kernel)
	if err != nil {
		return nil, err
	}
	return windowPlan(m, p, an, l), nil
}

// analyzeBackends attaches the backend lattice rows for one launch
// shape. A CARS-mode analysis realises only the cars backend; a
// shared-spill-mode analysis realises both the smem backend (one
// design point: the base allocation) and the rfcache ladder. The
// traffic refinements need the residual closure Report stashes;
// hand-built reports get occupancy-only rows.
func analyzeBackends(kr *KernelReport, p *isa.Program, m MachineParams, shape LaunchShape, an *callgraph.Analysis) {
	kr.Perf.Backends = kr.Perf.Backends[:0]
	mode := modeOf(p)
	zero := costVal{}.bound()
	switch {
	case m.CARS && mode == modeCARS:
		bp := BackendPerf{Backend: cars.BackendCARS.String(), HighFree: false}
		demand := kr.StackSlots
		for _, o := range kr.Perf.Occupancy {
			bl := BackendLevel{LevelOccupancy: o, SpillSmemBytes: zero, SmemTxns: zero}
			if kr.resid != nil {
				// CARS spills are register renames: no spill LDS/STS
				// exist, so the residual is the user transaction bound.
				bl.SpillSmemBytes, bl.SmemTxns = kr.resid.at(-1)
			}
			bl.Covered = demand >= 0 && demand <= o.StackSlots
			bp.Levels = append(bp.Levels, bl)
		}
		if adv := kr.Perf.Advice; adv != nil {
			bp.HighFree = adv.HighFree
			bp.Advice = adv
		}
		kr.Perf.Backends = append(kr.Perf.Backends, bp)

	case !m.CARS && mode == modeSmem:
		// Shared-spill backend: a single design point — the base
		// allocation row AnalyzePerf just computed — paying the full
		// spill traffic through the banked shared path.
		if len(kr.Perf.Occupancy) == 0 {
			return
		}
		sb := BackendLevel{LevelOccupancy: kr.Perf.Occupancy[0], SpillSmemBytes: zero, SmemTxns: zero}
		if kr.resid != nil {
			sb.SpillSmemBytes, sb.SmemTxns = kr.resid.at(-1)
		}
		sb.Covered = kr.resid != nil && sb.SpillSmemBytes.Value == 0
		smem := BackendPerf{Backend: cars.BackendSmemSpill.String()}
		smem.Levels = []BackendLevel{sb}
		smem.Advice = adviseBackend(kr.Kernel, smem.Levels, false)
		kr.Perf.Backends = append(kr.Perf.Backends, smem)

		// RF-cache backend: the window ladder. The simulator charges the
		// window as base registers (roundRegs(MaxRegs + W)) and admits
		// whole blocks only — mirror both exactly.
		plan := windowPlan(m, p, an, shape)
		rfc := BackendPerf{Backend: cars.BackendRFCache.String(), HighFree: plan.HighFree}
		for _, lvl := range plan.Levels {
			o := occupancyAt(m, p, shape, m.roundRegs(an.MaxRegs+lvl.StackSlots), false)
			o.Level = lvl.Name()
			o.StackSlots = lvl.StackSlots
			bl := BackendLevel{LevelOccupancy: o, SpillSmemBytes: zero, SmemTxns: zero}
			if kr.resid != nil {
				bl.SpillSmemBytes, bl.SmemTxns = kr.resid.at(lvl.StackSlots)
			}
			bl.Covered = kr.resid != nil && bl.SpillSmemBytes.Value == 0
			rfc.Levels = append(rfc.Levels, bl)
		}
		rfc.Advice = adviseBackend(kr.Kernel, rfc.Levels, plan.HighFree)
		kr.Perf.Backends = append(kr.Perf.Backends, rfc)
	}
}
