package config

import (
	"fmt"
	"strconv"
	"strings"

	"carsgo/internal/sim"
)

// Named resolves a configuration by the short name the CLIs and the
// carsd daemon share ("base", "cars", "ideal", "10mb", "allhit",
// "swl<N>", "3070", "3070cars", "lto"). The second return is whether
// the name requests link-time-inlined compilation (the "lto" pseudo-
// configuration, which runs the baseline machine on an inlined
// program).
func Named(name string) (sim.Config, bool, error) {
	lto := false
	var c sim.Config
	switch {
	case name == "base":
		c = V100()
	case name == "cars":
		c = WithCARS(V100())
	case name == "ideal":
		c = IdealizedVirtualWarps(V100())
	case name == "10mb":
		c = TenMBL1(V100())
	case name == "allhit":
		c = AllHit(V100())
	case name == "3070":
		c = RTX3070()
	case name == "3070cars":
		c = WithCARS(RTX3070())
	case name == "lto":
		c = V100()
		lto = true
	case strings.HasPrefix(name, "swl"):
		n, err := strconv.Atoi(name[3:])
		if err != nil || n <= 0 {
			return c, false, fmt.Errorf("bad SWL limit in %q", name)
		}
		c = SWL(V100(), n)
		c.Name = "SWL" + name[3:]
	default:
		return c, false, fmt.Errorf("unknown config %q (have %s)", name, strings.Join(NamedList(), ", "))
	}
	return c, lto, nil
}

// NamedList enumerates the names Named accepts.
func NamedList() []string {
	return []string{"base", "cars", "ideal", "10mb", "allhit", "swl<N>", "3070", "3070cars", "lto"}
}
