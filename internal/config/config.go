// Package config provides the simulated GPU configurations the paper
// evaluates (§V-D): the V100 baseline, the Ampere RTX 3070 variant
// (Fig. 18), and the idealised comparison points — Idealized Virtual
// Warps (Zorua-style unlimited resources), 10MB L1, ALL-HIT, the static
// wavefront limiter, and L1 port scaling (Fig. 17).
//
// The model is scaled to a fraction of the real die (default 8 SMs)
// with L2/DRAM bandwidth scaled proportionally, so whole-suite
// experiments run in seconds; speedups are relative, so the scale
// cancels out of every figure.
package config

import (
	"fmt"
	"strings"

	"carsgo/internal/cars"
	"carsgo/internal/mem"
	"carsgo/internal/sim"
)

// DefaultSMs is the simulated SM count (a slice of the 80-SM V100).
const DefaultSMs = 8

// V100 returns the baseline configuration (§V-D Baseline).
func V100() sim.Config {
	n := DefaultSMs
	return sim.Config{
		Name:            "V100",
		NumSMs:          n,
		MaxWarpsPerSM:   64,
		MaxBlocksPerSM:  32,
		MaxThreadsPerSM: 2048,
		SchedulersPerSM: 4,
		RegFileSlots:    2048, // 256KB / 128B
		RegGranularity:  8,
		SharedMemBytes:  96 * 1024,
		L1D: mem.L1Config{
			Cache:      mem.CacheConfig{Bytes: 128 * 1024, Assoc: 8, LineBytes: 128, SectorBytes: 32},
			HitLatency: 28,
			MSHRs:      48,
		},
		L1DSectorsPerCycle: 4,
		LSUQueueCap:        16,
		L1I:                mem.CacheConfig{Bytes: 128 * 1024, Assoc: 8, LineBytes: 128, SectorBytes: 32},
		ALULat:             4,
		SFULat:             16,
		SmemLat:            24,
		Mem: mem.SystemConfig{
			L2:                  mem.CacheConfig{Bytes: 768 * 1024, Assoc: 16, LineBytes: 128, SectorBytes: 32},
			L2Latency:           190,
			L2SectorsPerCycle:   1.6 * float64(n),
			DRAMLatency:         220,
			DRAMSectorsPerCycle: 0.7 * float64(n),
		},
		GlobalMemWords: 24 << 20, // 96 MB
		CARSPolicy:     cars.AdaptivePolicy(),
		TimelineWindow: 0,
	}
}

// RTX3070 returns the Ampere configuration for Fig. 18: the same model
// with Ampere-class occupancy limits — fewer warps and threads per SM,
// a combined 128KB L1/shared, and a smaller register file share per
// warp slot, which shifts CARS' watermark choices exactly as the paper
// observes for MST (Low instead of High).
func RTX3070() sim.Config {
	c := V100()
	c.Name = "RTX3070"
	c.MaxWarpsPerSM = 48
	c.MaxThreadsPerSM = 1536
	c.MaxBlocksPerSM = 16
	c.SharedMemBytes = 100 * 1024
	c.RegFileSlots = 2048
	c.L1D.Cache.Bytes = 96 * 1024
	c.L1I.Bytes = 128 * 1024
	c.Mem.L2.Bytes = 512 * 1024
	return c
}

// WithCARS enables CARS (adaptive) on a configuration.
func WithCARS(c sim.Config) sim.Config {
	c.Name += "+CARS"
	c.CARSEnabled = true
	c.CARSIssueExtra = 1
	return c
}

// WithRegisterWindows enables the register-window ablation: CARS'
// machinery with fixed-size frames (§VII's classic alternative), so the
// cost of window waste is directly measurable against exact-FRU CARS.
func WithRegisterWindows(c sim.Config) sim.Config {
	c = WithCARS(c)
	c.Name = strings.TrimSuffix(c.Name, "+CARS") + "+RegWindows"
	c.WindowedStacks = true
	return c
}

// WithSharedSpill compiles workloads with the CRAT-like shared-memory
// spill ABI (§VII): spill traffic leaves the L1D entirely, but the
// per-warp spill frames consume shared memory and therefore occupancy —
// the capacity-only tradeoff CARS is designed to avoid.
func WithSharedSpill(c sim.Config) sim.Config {
	c.Name += "+SmemSpill"
	c.SharedSpillABI = true
	return c
}

// WithRFCache layers the RF-cache backend over the shared-spill ABI:
// a per-thread register window of `words` spill slots absorbs the
// hottest (stack-top) spill traffic at register cost.
func WithRFCache(c sim.Config, words int) sim.Config {
	if !c.SharedSpillABI {
		c = WithSharedSpill(c)
	}
	c.Name += fmt.Sprintf("+RFC%d", words)
	c.RFCacheWindow = words
	return c
}

// WithCARSPolicy enables CARS with a fixed allocation mechanism
// (the per-mechanism study of Fig. 14).
func WithCARSPolicy(c sim.Config, p cars.Policy) sim.Config {
	c = WithCARS(c)
	c.CARSPolicy = p
	return c
}

// IdealizedVirtualWarps models the idealised Zorua configuration: an
// unlimited number of registers, shared memory, and thread-block slots.
func IdealizedVirtualWarps(c sim.Config) sim.Config {
	c.Name = "IdealVW"
	c.UnlimitedRegs = true
	c.UnlimitedSmem = true
	c.UnlimitedBlocks = true
	return c
}

// TenMBL1 grows each SM's L1D to 10MB (§V-D), eliminating capacity
// misses for most workloads.
func TenMBL1(c sim.Config) sim.Config {
	c.Name = "10MB-L1"
	c.L1D.Cache.Bytes = 10 * 1024 * 1024
	c.L1D.MSHRs = 256
	return c
}

// AllHit makes every spill/fill access hit in the L1D without
// traversing the cache, still paying hit latency and port bandwidth
// (§VI-A2's ALL-HIT study).
func AllHit(c sim.Config) sim.Config {
	c.Name = "ALL-HIT"
	c.L1D.AllHitSpills = true
	return c
}

// SWL applies the static wavefront limiter at the given warp count.
// Best-SWL sweeps {1,2,3,4,8,16} and keeps the best (§V-D).
func SWL(c sim.Config, warps int) sim.Config {
	c.Name = "SWL"
	c.SWLLimit = warps
	return c
}

// BestSWLCounts is the warp-limit sweep the paper uses.
var BestSWLCounts = []int{1, 2, 3, 4, 8, 16}

// ScaleL1Ports multiplies the L1D port bandwidth (Fig. 17's 2×/4×/8×).
func ScaleL1Ports(c sim.Config, factor int) sim.Config {
	c.L1DSectorsPerCycle *= factor
	return c
}

// WithTimeline enables bandwidth-timeline sampling (Fig. 11).
func WithTimeline(c sim.Config, window int64) sim.Config {
	c.TimelineWindow = window
	return c
}
