package config

import (
	"testing"

	"carsgo/internal/cars"
)

func TestV100Defaults(t *testing.T) {
	c := V100()
	if c.RegFileSlots != 2048 {
		t.Errorf("regfile slots = %d (256KB / 128B)", c.RegFileSlots)
	}
	if c.MaxWarpsPerSM != 64 || c.SchedulersPerSM != 4 {
		t.Error("V100 warp geometry wrong")
	}
	if c.L1D.Cache.Bytes != 128*1024 || c.L1D.Cache.SectorBytes != 32 {
		t.Error("V100 L1D geometry wrong")
	}
	if c.CARSEnabled {
		t.Error("baseline must not enable CARS")
	}
}

func TestVariantsAreDistinctAndNonDestructive(t *testing.T) {
	base := V100()
	cars1 := WithCARS(V100())
	if !cars1.CARSEnabled || cars1.Name == base.Name {
		t.Error("WithCARS wrong")
	}
	if base.CARSEnabled {
		t.Error("WithCARS mutated its argument's source")
	}
	ten := TenMBL1(V100())
	if ten.L1D.Cache.Bytes != 10*1024*1024 {
		t.Error("10MB L1 wrong")
	}
	ideal := IdealizedVirtualWarps(V100())
	if !ideal.UnlimitedRegs || !ideal.UnlimitedSmem || !ideal.UnlimitedBlocks {
		t.Error("IdealVW must lift registers, smem, and block slots")
	}
	ah := AllHit(V100())
	if !ah.L1D.AllHitSpills {
		t.Error("ALL-HIT flag unset")
	}
	swl := SWL(V100(), 4)
	if swl.SWLLimit != 4 {
		t.Error("SWL limit unset")
	}
	scaled := ScaleL1Ports(V100(), 4)
	if scaled.L1DSectorsPerCycle != base.L1DSectorsPerCycle*4 {
		t.Error("port scaling wrong")
	}
	tl := WithTimeline(V100(), 512)
	if tl.TimelineWindow != 512 {
		t.Error("timeline window unset")
	}
}

func TestRTX3070Differs(t *testing.T) {
	a := RTX3070()
	if a.MaxWarpsPerSM >= V100().MaxWarpsPerSM {
		t.Error("Ampere warp limit should be lower (48 vs 64)")
	}
	if a.MaxThreadsPerSM != 1536 {
		t.Errorf("Ampere threads = %d", a.MaxThreadsPerSM)
	}
}

func TestForcedPolicyConfig(t *testing.T) {
	c := WithCARSPolicy(V100(), cars.ForcedPolicy(cars.Level{Kind: cars.KindHigh}))
	if !c.CARSEnabled || c.CARSPolicy.Adaptive {
		t.Error("forced policy config wrong")
	}
}

func TestBestSWLCounts(t *testing.T) {
	want := []int{1, 2, 3, 4, 8, 16}
	if len(BestSWLCounts) != len(want) {
		t.Fatal("SWL sweep changed")
	}
	for i, n := range want {
		if BestSWLCounts[i] != n {
			t.Errorf("sweep[%d] = %d, want %d (§V-D)", i, BestSWLCounts[i], n)
		}
	}
}
