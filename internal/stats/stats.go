// Package stats collects the simulation metrics the paper reports:
// memory-access breakdowns by class (Figs. 2, 9), instruction-mix
// breakdowns (Fig. 13), MPKI/CPKI (Table I, Fig. 12), bandwidth
// timelines (Fig. 11), trap frequencies (Table III), and the derived
// speedup/efficiency aggregates.
package stats

import (
	"math"

	"carsgo/internal/mem"
)

// InstrCat classifies issued instructions for Fig. 13.
type InstrCat uint8

// Instruction categories.
const (
	CatALU InstrCat = iota
	CatSFU
	CatSpillFill // LDL/STL inserted by the ABI or injected by traps
	CatGlobal
	CatLocalOther
	CatShared
	CatControl // branches, call/ret, exit, barriers
	CatCARSOp  // PUSHRFP/PUSH/POP micro-ops
	CatOther
	NumInstrCats
)

func (c InstrCat) String() string {
	switch c {
	case CatALU:
		return "alu"
	case CatSFU:
		return "sfu"
	case CatSpillFill:
		return "spill/fill"
	case CatGlobal:
		return "global"
	case CatLocalOther:
		return "local-other"
	case CatShared:
		return "shared"
	case CatControl:
		return "control"
	case CatCARSOp:
		return "cars-op"
	}
	return "other"
}

// BWSample is one bandwidth-timeline window (Fig. 11).
type BWSample struct {
	Cycle         int64
	GlobalSectors uint64
	LocalSectors  uint64
}

// Kernel aggregates one kernel launch's metrics.
type Kernel struct {
	Name   string
	Cycles int64

	// Instructions counts issued warp-instructions by category.
	Instructions [NumInstrCats]uint64

	// ThreadInstructions is the lane-weighted instruction count.
	ThreadInstructions uint64

	// Calls counts executed call instructions (warp-level).
	Calls uint64

	// MaxCallDepth observed dynamically.
	MaxCallDepth int

	// MaxRSP is the highest absolute register-stack pointer any warp
	// reached (CARS): the dynamic counterpart of vet's static
	// per-kernel stack-demand bound.
	MaxRSP int

	// L1D aggregates the data-cache stats across SMs; L1I likewise.
	L1D mem.CacheStats
	L1I mem.CacheStats
	L2  mem.CacheStats

	DRAMSectors uint64

	// Trap accounting (Table III).
	TrapCalls        uint64 // calls that invoked the spill trap handler
	TrapSpillSlots   uint64 // register-stack slots spilled by traps
	TrapFillSlots    uint64 // register-stack slots filled back
	ContextSwitches  uint64 // barrier-deadlock context switches
	CtxSwitchSlots   uint64 // register slots moved by context switches
	StalledWarpTicks uint64 // warp-cycles spent register-deactivated

	// Shared-memory backend accounting (spill-policy lattice).
	// SmemTxns counts bank-serialised shared-memory transactions: each
	// LDS/STS contributes the number of serialised passes its active
	// lanes' bank mapping forces (1 when conflict-free or broadcast).
	SmemTxns uint64
	// RFCacheHits counts spill-flagged shared accesses absorbed by the
	// RF-cache window (no smem transaction, register-file latency).
	RFCacheHits uint64

	// Occupancy.
	// ResidentWarps is the warp occupancy reached by the launch's
	// opening admission wave on the busiest SM (register-deactivated
	// warps included: they hold warp slots). Mid-run admissions during
	// block drain can transiently exceed it by warp granularity — a
	// finished warp releases its registers before its block retires —
	// so the steady-state wave, not the transient, is the occupancy
	// figure. The static model in internal/vet predicts it exactly.
	ResidentWarps int
	WarpCycles    uint64 // sum over cycles of resident warps
	ActiveCycles  uint64 // sum over cycles of issuable warps
	IssuedCycles  uint64 // cycles with ≥1 issue per SM, summed
	RegSlotsAlloc uint64 // register slots allocated × blocks (demand proxy)

	// Register file activity (for the energy model).
	RFReads  uint64
	RFWrites uint64

	Timeline []BWSample

	// CARSLevels records, per allocation-level name, how many thread
	// blocks ran at that level (Fig. 14 / §VI-B).
	CARSLevels map[string]int
}

// TotalInstructions sums warp-instructions over categories.
func (k *Kernel) TotalInstructions() uint64 {
	var t uint64
	for _, v := range k.Instructions {
		t += v
	}
	return t
}

// CPKI returns call instructions per thousand warp-instructions.
func (k *Kernel) CPKI() float64 {
	ti := k.TotalInstructions()
	if ti == 0 {
		return 0
	}
	return 1000 * float64(k.Calls) / float64(ti)
}

// MPKI returns L1D sector misses per thousand warp-instructions.
func (k *Kernel) MPKI() float64 {
	ti := k.TotalInstructions()
	if ti == 0 {
		return 0
	}
	return 1000 * float64(k.L1D.TotalMisses()) / float64(ti)
}

// SpillFillFraction is the fraction of L1D accesses that are spills.
func (k *Kernel) SpillFillFraction() float64 {
	t := k.L1D.TotalAccesses()
	if t == 0 {
		return 0
	}
	return float64(k.L1D.Accesses[mem.ClassLocalSpill]) / float64(t)
}

// Merge accumulates another kernel's stats (for multi-launch apps).
func (k *Kernel) Merge(o *Kernel) {
	k.Cycles += o.Cycles
	for i := range k.Instructions {
		k.Instructions[i] += o.Instructions[i]
	}
	k.ThreadInstructions += o.ThreadInstructions
	k.Calls += o.Calls
	if o.MaxCallDepth > k.MaxCallDepth {
		k.MaxCallDepth = o.MaxCallDepth
	}
	if o.MaxRSP > k.MaxRSP {
		k.MaxRSP = o.MaxRSP
	}
	if o.ResidentWarps > k.ResidentWarps {
		k.ResidentWarps = o.ResidentWarps
	}
	mergeCache(&k.L1D, &o.L1D)
	mergeCache(&k.L1I, &o.L1I)
	mergeCache(&k.L2, &o.L2)
	k.DRAMSectors += o.DRAMSectors
	k.TrapCalls += o.TrapCalls
	k.TrapSpillSlots += o.TrapSpillSlots
	k.TrapFillSlots += o.TrapFillSlots
	k.ContextSwitches += o.ContextSwitches
	k.CtxSwitchSlots += o.CtxSwitchSlots
	k.StalledWarpTicks += o.StalledWarpTicks
	k.SmemTxns += o.SmemTxns
	k.RFCacheHits += o.RFCacheHits
	k.WarpCycles += o.WarpCycles
	k.ActiveCycles += o.ActiveCycles
	k.IssuedCycles += o.IssuedCycles
	k.RegSlotsAlloc += o.RegSlotsAlloc
	k.RFReads += o.RFReads
	k.RFWrites += o.RFWrites
	k.Timeline = append(k.Timeline, o.Timeline...)
	if k.CARSLevels == nil {
		k.CARSLevels = map[string]int{}
	}
	for name, n := range o.CARSLevels {
		k.CARSLevels[name] += n
	}
}

func mergeCache(dst, src *mem.CacheStats) {
	for i := range dst.Accesses {
		dst.Accesses[i] += src.Accesses[i]
		dst.Misses[i] += src.Misses[i]
	}
	dst.LineFills += src.LineFills
	dst.Writebacks += src.Writebacks
}

// Geomean returns the geometric mean of xs (which must be positive).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
