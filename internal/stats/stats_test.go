package stats

import (
	"math"
	"testing"
	"testing/quick"

	"carsgo/internal/mem"
)

func TestCPKIAndMPKI(t *testing.T) {
	var k Kernel
	k.Instructions[CatALU] = 900
	k.Instructions[CatControl] = 100
	k.Calls = 50
	k.L1D.Misses[mem.ClassGlobal] = 30
	k.L1D.Misses[mem.ClassLocalSpill] = 20
	if got := k.CPKI(); got != 50 {
		t.Errorf("CPKI = %v", got)
	}
	if got := k.MPKI(); got != 50 {
		t.Errorf("MPKI = %v", got)
	}
	var empty Kernel
	if empty.CPKI() != 0 || empty.MPKI() != 0 {
		t.Error("empty kernel rates must be zero")
	}
}

func TestSpillFillFraction(t *testing.T) {
	var k Kernel
	k.L1D.Accesses[mem.ClassLocalSpill] = 40
	k.L1D.Accesses[mem.ClassGlobal] = 60
	if got := k.SpillFillFraction(); got != 0.4 {
		t.Errorf("fraction = %v", got)
	}
}

func TestMergeAccumulates(t *testing.T) {
	a := &Kernel{Cycles: 100, Calls: 5, MaxCallDepth: 2}
	a.Instructions[CatALU] = 10
	a.CARSLevels = map[string]int{"Low": 1}
	b := &Kernel{Cycles: 50, Calls: 3, MaxCallDepth: 7}
	b.Instructions[CatALU] = 20
	b.L1D.Accesses[mem.ClassGlobal] = 4
	b.CARSLevels = map[string]int{"Low": 2, "High": 1}
	a.Merge(b)
	if a.Cycles != 150 || a.Calls != 8 || a.MaxCallDepth != 7 {
		t.Fatalf("merge basics: %+v", a)
	}
	if a.Instructions[CatALU] != 30 {
		t.Fatal("instructions not merged")
	}
	if a.L1D.Accesses[mem.ClassGlobal] != 4 {
		t.Fatal("cache stats not merged")
	}
	if a.CARSLevels["Low"] != 3 || a.CARSLevels["High"] != 1 {
		t.Fatalf("levels not merged: %v", a.CARSLevels)
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v", got)
	}
	if got := Geomean(nil); got != 0 {
		t.Errorf("geomean(nil) = %v", got)
	}
	if got := Geomean([]float64{3}); math.Abs(got-3) > 1e-12 {
		t.Errorf("geomean(3) = %v", got)
	}
}

// Property: geomean lies between min and max and is scale-equivariant.
func TestGeomeanProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := Geomean(xs)
		if g < lo-1e-9 || g > hi+1e-9 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 2
		}
		return math.Abs(Geomean(scaled)-2*g) < 1e-6*g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstrCatStrings(t *testing.T) {
	seen := map[string]bool{}
	for c := CatALU; c < NumInstrCats; c++ {
		s := c.String()
		if s == "" {
			t.Errorf("cat %d unnamed", c)
		}
		if seen[s] && s != "other" {
			t.Errorf("duplicate name %q", s)
		}
		seen[s] = true
	}
}
