package sim

import (
	"testing"

	"carsgo/internal/abi"
	"carsgo/internal/isa"
	"carsgo/internal/kir"
	"carsgo/internal/mem"
)

func l1Cfg() mem.L1Config {
	return mem.L1Config{
		Cache:      mem.CacheConfig{Bytes: 32 * 1024, Assoc: 4, LineBytes: 128, SectorBytes: 32},
		HitLatency: 20,
		MSHRs:      16,
	}
}

func memCfg() mem.SystemConfig {
	return mem.SystemConfig{
		L2:                  mem.CacheConfig{Bytes: 128 * 1024, Assoc: 8, LineBytes: 128, SectorBytes: 32},
		L2Latency:           100,
		L2SectorsPerCycle:   4,
		DRAMLatency:         200,
		DRAMSectorsPerCycle: 2,
	}
}

func tinyConfig() Config {
	return Config{
		Name:               "tiny",
		NumSMs:             2,
		MaxWarpsPerSM:      16,
		MaxBlocksPerSM:     4,
		MaxThreadsPerSM:    512,
		SchedulersPerSM:    2,
		RegFileSlots:       512,
		RegGranularity:     8,
		SharedMemBytes:     16 * 1024,
		L1D:                l1Cfg(),
		L1DSectorsPerCycle: 4,
		LSUQueueCap:        8,
		L1I:                l1Cfg().Cache,
		ALULat:             4,
		SFULat:             16,
		SmemLat:            24,
		Mem:                memCfg(),
		GlobalMemWords:     1 << 16,
	}
}

func tinyProgram(t *testing.T) *isa.Program {
	t.Helper()
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("main")
	k.S2R(8, isa.SrTID).MovI(9, 1).Exit()
	m.AddFunc(k.MustBuild())
	p, err := abi.Link(abi.Baseline, m)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMaxWarpsOtherLimits(t *testing.T) {
	cfg := tinyConfig()
	g, err := New(cfg, tinyProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	// Thread-limited: 512 threads / 128 = 4 blocks × 4 warps = 16 warps,
	// capped by MaxWarpsPerSM.
	if got := g.maxWarpsOther(isa.Launch{Dim: isa.Dim3{Grid: 100, Block: 128}}); got != 16 {
		t.Errorf("thread-limited warps = %d, want 16", got)
	}
	// Block-slot limited: 4 blocks × 1 warp.
	if got := g.maxWarpsOther(isa.Launch{Dim: isa.Dim3{Grid: 100, Block: 32}}); got != 4 {
		t.Errorf("block-limited warps = %d, want 4", got)
	}
	// Shared-memory limited: 16KB / 8KB = 2 blocks.
	if got := g.maxWarpsOther(isa.Launch{
		Dim: isa.Dim3{Grid: 100, Block: 64}, SharedBytes: 8 * 1024,
	}); got != 4 {
		t.Errorf("smem-limited warps = %d, want 2 blocks x 2 warps", got)
	}
	// Grid smaller than capacity.
	if got := g.maxWarpsOther(isa.Launch{Dim: isa.Dim3{Grid: 1, Block: 64}}); got != 2 {
		t.Errorf("grid-limited warps = %d, want 2", got)
	}
}

func TestLaunchValidation(t *testing.T) {
	g, err := New(tinyConfig(), tinyProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(isa.Launch{Kernel: "nope", Dim: isa.Dim3{Grid: 1, Block: 32}}); err == nil {
		t.Error("unknown kernel launched")
	}
	if _, err := g.Run(isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 0, Block: 32}}); err == nil {
		t.Error("zero grid launched")
	}
	if _, err := g.Run(isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 1, Block: 4096}}); err == nil {
		t.Error("oversized block launched")
	}
}

func TestConfigProgramModeMismatch(t *testing.T) {
	cfg := tinyConfig()
	cfg.CARSEnabled = true
	if _, err := New(cfg, tinyProgram(t)); err == nil {
		t.Error("CARS config accepted baseline program")
	}
}

func TestRegisterLimitedBaselineRejected(t *testing.T) {
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("main")
	for r := 0; r < 250; r++ {
		k.MovI(uint8(r), int32(r))
	}
	k.Exit()
	m.AddFunc(k.MustBuild())
	p, err := abi.Link(abi.Baseline, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	g, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	// 256 regs x 16 warps = 4096 > 512 slots: launch must fail loudly.
	if _, err := g.Run(isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 1, Block: 512}}); err == nil {
		t.Error("impossible register demand accepted")
	}
}

func TestCodeBytesLayout(t *testing.T) {
	g, err := New(tinyConfig(), tinyProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if g.CodeBytes() == 0 {
		t.Error("no code footprint")
	}
	// Function bases are 128B aligned.
	for _, base := range g.funcBase {
		if base%128 != 0 {
			t.Errorf("function base %d not line-aligned", base)
		}
	}
}

func TestLocalPhysAddrDisjoint(t *testing.T) {
	g, err := New(tinyConfig(), tinyProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	// Different warps' local spaces never overlap; all live above the
	// global segment.
	end0 := g.localPhysAddr(0, localWordsPerWarp-1, 31)
	start1 := g.localPhysAddr(1, 0, 0)
	if end0 >= start1 {
		t.Errorf("warp local spaces overlap: %d >= %d", end0, start1)
	}
	if g.localPhysAddr(0, 0, 0) < uint64(g.Cfg.GlobalMemWords)*4 {
		t.Error("local space aliases global memory")
	}
	// Lanes of one word pack one 128B line.
	a := g.localPhysAddr(5, 7, 0)
	b := g.localPhysAddr(5, 7, 31)
	if b-a != 124 || a%128 != 0 {
		t.Errorf("lane packing wrong: %d..%d", a, b)
	}
}

func TestOccupancyFor(t *testing.T) {
	g, err := New(tinyConfig(), tinyProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	// tiny: 512 threads, 4 block slots, 512 reg slots, 16KB smem.
	// Block of 128 threads (4 warps) at the default 8-reg allocation:
	// threads -> 4, slots -> 4, regs -> 512/(8*4) = 16.
	o, err := g.OccupancyFor(isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 100, Block: 128}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o.Blocks != 4 || o.Warps != 16 {
		t.Fatalf("occupancy: %+v", o)
	}
	if o.LimitedBy() != "registers" && o.LimitedBy() != "threads" && o.LimitedBy() != "block slots" {
		t.Fatalf("limiter: %s", o.LimitedBy())
	}
	// A fat register allocation becomes the limiter.
	o, err = g.OccupancyFor(isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 100, Block: 128}}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if o.BlocksByRegs != 2 || o.Blocks != 2 || o.LimitedBy() != "registers" {
		t.Fatalf("reg-limited occupancy: %+v (%s)", o, o.LimitedBy())
	}
	// Shared memory limiter.
	o, err = g.OccupancyFor(isa.Launch{
		Kernel: "main", Dim: isa.Dim3{Grid: 100, Block: 64}, SharedBytes: 8 * 1024,
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if o.BlocksBySmem != 2 || o.Blocks != 2 || o.LimitedBy() != "shared memory" {
		t.Fatalf("smem-limited occupancy: %+v (%s)", o, o.LimitedBy())
	}
	// Small grids cap the count.
	o, _ = g.OccupancyFor(isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 1, Block: 64}}, 8)
	if o.Blocks != 1 || o.LimitedBy() != "grid" {
		t.Fatalf("grid-capped occupancy: %+v (%s)", o, o.LimitedBy())
	}
	if _, err := g.OccupancyFor(isa.Launch{Kernel: "nope", Dim: isa.Dim3{Grid: 1, Block: 64}}, 0); err == nil {
		t.Error("unknown kernel accepted")
	}
}
