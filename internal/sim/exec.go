package sim

import (
	"math"
	"math/bits"

	"carsgo/internal/isa"
	"carsgo/internal/mem"
	"carsgo/internal/stats"
)

func categorize(in *isa.Instruction) stats.InstrCat {
	switch {
	case in.Spill:
		return stats.CatSpillFill
	case in.Op.IsCARSOp():
		return stats.CatCARSOp
	case in.Op.IsSFU():
		return stats.CatSFU
	case in.Op.IsLocal():
		return stats.CatLocalOther
	case in.Op.IsGlobal():
		return stats.CatGlobal
	case in.Op == isa.OpLdS || in.Op == isa.OpStS:
		return stats.CatShared
	case in.Op.IsControl() || in.Op == isa.OpBar:
		return stats.CatControl
	case in.Op == isa.OpNop:
		return stats.CatOther
	default:
		return stats.CatALU
	}
}

// execute runs one issued instruction: functional effects immediately,
// timing effects through the scoreboard, LSU, and SIMT stack.
func (s *SM) execute(now int64, w *Warp, in *isa.Instruction) {
	cfg := &s.gpu.Cfg
	st := s.stats()
	top := w.SIMT.Top()
	pc := top.PC
	active := top.Mask

	guard := active
	if in.Op != isa.OpSel { // Sel's predicate selects, it does not guard
		guard = active & w.predMask(in)
	}

	cat := categorize(in)
	st.Instructions[cat]++
	st.ThreadInstructions += uint64(bits.OnesCount32(guard))
	if s.gpu.Trace != nil {
		s.gpu.Trace.OnIssue(s.id, w.GWID, top.Func, pc, in.Op, guard)
	}
	mon := s.gpu.San
	if mon != nil {
		s.monReads(mon, w, in, top.Func, pc, guard)
	}

	// Register-file energy: one 128B access per operand.
	nsrc := 0
	if in.SrcA != isa.NoReg {
		nsrc++
	}
	if in.SrcB != isa.NoReg {
		nsrc++
	}
	if in.SrcC != isa.NoReg {
		nsrc++
	}
	st.RFReads += uint64(nsrc)
	if in.Dst != isa.NoReg {
		st.RFWrites++
	}

	aluDone := now + cfg.ALULat
	if cfg.RFBanks > 1 {
		aluDone += int64(s.bankConflicts(w, in, cfg.RFBanks))
	}
	// The paper's extra issue/operand-collector pipeline cycle (§IV-C)
	// gates the register-stack bookkeeping on calls and returns; plain
	// control flow is untouched, preserving the "without harming
	// function-free programs" property.
	ctrlExtra := int64(0)
	if cfg.CARSEnabled {
		ctrlExtra = cfg.CARSIssueExtra
	}

	switch in.Op {
	case isa.OpNop:
		w.SIMT.Advance()

	case isa.OpIAdd, isa.OpISub, isa.OpIMul, isa.OpIMad, isa.OpIMin,
		isa.OpIMax, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr,
		isa.OpMov, isa.OpMovI, isa.OpFAdd, isa.OpFMul, isa.OpFFma:
		s.execALU(w, in, guard)
		w.ReadyAt[in.Dst] = aluDone
		w.SIMT.Advance()

	case isa.OpFRcp, isa.OpFSqr:
		s.execALU(w, in, guard)
		w.ReadyAt[in.Dst] = now + cfg.SFULat
		w.SIMT.Advance()

	case isa.OpSel:
		dst, a, b := w.reg(in.Dst), w.reg(in.SrcA), w.reg(in.SrcB)
		sel := w.Preds[in.Pred]
		if in.PNeg {
			sel = ^sel
		}
		for l := 0; l < isa.WarpSize; l++ {
			if guard&(1<<l) == 0 {
				continue
			}
			if sel&(1<<l) != 0 {
				dst[l] = a[l]
			} else {
				dst[l] = b[l]
			}
		}
		w.ReadyAt[in.Dst] = aluDone
		w.SIMT.Advance()

	case isa.OpSetP:
		a := w.reg(in.SrcA)
		var res uint32
		for l := 0; l < isa.WarpSize; l++ {
			if guard&(1<<l) == 0 {
				continue
			}
			bv := uint32(in.Imm)
			if in.SrcB != isa.NoReg {
				bv = w.reg(in.SrcB)[l]
			}
			if in.Cmp.Eval(a[l], bv) {
				res |= 1 << l
			}
		}
		w.Preds[in.PDst] = (w.Preds[in.PDst] &^ guard) | res
		w.PredReadyAt[in.PDst] = aluDone
		w.SIMT.Advance()

	case isa.OpS2R:
		dst := w.reg(in.Dst)
		for l := 0; l < isa.WarpSize; l++ {
			if guard&(1<<l) == 0 {
				continue
			}
			dst[l] = s.specialValue(w, in.Sreg, l)
		}
		w.ReadyAt[in.Dst] = aluDone
		w.SIMT.Advance()

	case isa.OpLdG, isa.OpStG:
		s.execGlobal(now, w, in, guard)
		w.SIMT.Advance()

	case isa.OpLdL, isa.OpStL:
		s.execLocal(now, w, in, guard)
		if mon != nil {
			mon.LocalAccess(w.GWID, top.Func, pc, in.Op == isa.OpStL, in.Spill, guard)
		}
		if mon != nil && in.Spill {
			if in.Op == isa.OpStL {
				mon.SpillStore(w.GWID, top.Func, pc, in.SrcC, in.Imm, guard, w.reg(in.SrcC))
			} else {
				mon.SpillFill(w.GWID, top.Func, pc, in.Dst, in.Imm, guard, w.reg(in.Dst))
			}
		}
		w.SIMT.Advance()

	case isa.OpLdS, isa.OpStS:
		if mon != nil {
			// Before execShared: a load's destination may alias its
			// address register, so the addresses must be read first.
			mon.SharedAccess(w.GWID, w.Block.ID, top.Func, pc,
				in.Op == isa.OpStS, in.Spill, guard, w.reg(in.SrcA), in.Imm)
		}
		s.execShared(now, w, in, guard)
		if mon != nil && in.Spill {
			if in.Op == isa.OpStS {
				mon.SpillStore(w.GWID, top.Func, pc, in.SrcC, in.Imm, guard, w.reg(in.SrcC))
			} else {
				mon.SpillFill(w.GWID, top.Func, pc, in.Dst, in.Imm, guard, w.reg(in.Dst))
			}
		}
		w.SIMT.Advance()

	case isa.OpBra:
		w.SIMT.Branch(pc, guard, in.Target, in.Target2)
		w.Wake = now + 1

	case isa.OpCall:
		st.Calls++
		if mon != nil {
			// Before the rename: regs still resolves the caller's window.
			mon.CallBegin(w.GWID, top.Func, pc, in.Callee, in.FRU, w.reg)
		}
		if cfg.CARSEnabled {
			s.carsCall(now, w, in.FRU)
		}
		w.SIMT.Call(in.Callee, pc+1)
		if mon != nil {
			mon.CallEnd(w.GWID, w.CStack.RFP, w.CStack.RSP)
		}
		w.DynCallDepth++
		if w.DynCallDepth > st.MaxCallDepth {
			st.MaxCallDepth = w.DynCallDepth
		}
		w.Wake = maxI64(w.Wake, now+2+ctrlExtra)

	case isa.OpCallI:
		st.Calls++
		target := s.indirectTarget(w, in, guard)
		if mon != nil {
			mon.CallBegin(w.GWID, top.Func, pc, target, in.FRU, w.reg)
		}
		if cfg.CARSEnabled {
			s.carsCall(now, w, in.FRU)
		}
		w.SIMT.Call(target, pc+1)
		if mon != nil {
			mon.CallEnd(w.GWID, w.CStack.RFP, w.CStack.RSP)
		}
		w.DynCallDepth++
		if w.DynCallDepth > st.MaxCallDepth {
			st.MaxCallDepth = w.DynCallDepth
		}
		w.Wake = maxI64(w.Wake, now+2+ctrlExtra)

	case isa.OpRet:
		released := w.SIMT.Ret()
		if released {
			w.DynCallDepth--
			if cfg.CARSEnabled {
				s.carsRet(now, w)
			}
			if mon != nil {
				mon.Return(w.GWID, top.Func, pc, w.CStack.RFP, w.CStack.RSP, w.reg)
			}
		}
		w.Wake = maxI64(w.Wake, now+2+ctrlExtra)

	case isa.OpPushRFP:
		// Timing-only: the register-stack pointer updates are performed
		// with the matching CALL; the micro-op costs an issue slot.
		w.SIMT.Advance()

	case isa.OpPush:
		// Under register windows the whole window was renamed at the
		// call; the micro-op costs its issue slot only.
		if !cfg.WindowedStacks {
			if err := w.CStack.Push(int(in.Imm)); err != nil {
				s.execFault(w, "%v", err)
			}
			if mon != nil {
				mon.StackPush(w.GWID, top.Func, pc, int(in.Imm), w.CStack.RFP, w.CStack.RSP)
			}
		}
		w.SIMT.Advance()

	case isa.OpPop:
		if !cfg.WindowedStacks {
			if err := w.CStack.Pop(int(in.Imm)); err != nil {
				s.execFault(w, "%v", err)
			}
			if mon != nil {
				mon.StackPop(w.GWID, top.Func, pc, int(in.Imm), w.CStack.RFP, w.CStack.RSP)
			}
		}
		w.SIMT.Advance()

	case isa.OpBar:
		if mon != nil {
			mon.Barrier(w.GWID, w.Block.ID, top.Func, pc, guard)
		}
		s.execBarrier(now, w, mon)

	case isa.OpExit:
		s.execExit(now, w, mon)

	default:
		s.execFault(w, "unimplemented op %s", in.Op)
	}

	if mon != nil && in.WritesReg() {
		mon.RegWrite(w.GWID, top.Func, pc, in.Dst, guard)
	}
}

func (s *SM) execALU(w *Warp, in *isa.Instruction, guard uint32) {
	dst := w.reg(in.Dst)
	var a, b, c *[isa.WarpSize]uint32
	if in.SrcA != isa.NoReg {
		a = w.reg(in.SrcA)
	}
	if in.SrcB != isa.NoReg {
		b = w.reg(in.SrcB)
	}
	if in.SrcC != isa.NoReg {
		c = w.reg(in.SrcC)
	}
	imm := uint32(in.Imm)
	for l := 0; l < isa.WarpSize; l++ {
		if guard&(1<<l) == 0 {
			continue
		}
		var av, bv, cv uint32
		if a != nil {
			av = a[l]
		}
		if b != nil {
			bv = b[l]
		} else {
			bv = imm
		}
		if c != nil {
			cv = c[l]
		}
		v, ok := evalALU(in.Op, av, bv, cv, imm)
		if !ok {
			s.execFault(w, "op %s reached the ALU without an evaluation rule", in.Op)
		}
		dst[l] = v
	}
}

func evalALU(op isa.Op, a, b, c, imm uint32) (uint32, bool) {
	switch op {
	case isa.OpIAdd:
		return a + b, true
	case isa.OpISub:
		return a - b, true
	case isa.OpIMul:
		return a * b, true
	case isa.OpIMad:
		return a*b + c, true
	case isa.OpIMin:
		if int32(a) < int32(b) {
			return a, true
		}
		return b, true
	case isa.OpIMax:
		if int32(a) > int32(b) {
			return a, true
		}
		return b, true
	case isa.OpAnd:
		return a & b, true
	case isa.OpOr:
		return a | b, true
	case isa.OpXor:
		return a ^ b, true
	case isa.OpShl:
		return a << (b & 31), true
	case isa.OpShr:
		return a >> (b & 31), true
	case isa.OpMov:
		return a, true
	case isa.OpMovI:
		return imm, true
	case isa.OpFAdd:
		return f2u(u2f(a) + u2f(b)), true
	case isa.OpFMul:
		return f2u(u2f(a) * u2f(b)), true
	case isa.OpFFma:
		return f2u(u2f(a)*u2f(b) + u2f(c)), true
	case isa.OpFRcp:
		return f2u(1 / u2f(a)), true
	case isa.OpFSqr:
		return f2u(float32(math.Sqrt(float64(u2f(a))))), true
	}
	return 0, false
}

func u2f(x uint32) float32 { return math.Float32frombits(x) }
func f2u(x float32) uint32 { return math.Float32bits(x) }

func (s *SM) specialValue(w *Warp, sr isa.Special, lane int) uint32 {
	switch sr {
	case isa.SrLaneID:
		return uint32(lane)
	case isa.SrTID:
		return uint32(w.WInBlock*isa.WarpSize + lane)
	case isa.SrCTAID:
		return uint32(w.Block.ID)
	case isa.SrNTID:
		return uint32(w.Block.ThreadsCnt)
	case isa.SrNCTAID:
		return uint32(s.gpu.launch.Dim.Grid)
	case isa.SrWarpID:
		return uint32(w.WInBlock)
	}
	return 0
}

// indirectTarget resolves an indirect call: the target function index
// must be warp-uniform over the active lanes (workloads dispatch after
// branching on type, so polymorphic calls arrive pre-sorted per warp;
// the paper's §III-C case 3).
func (s *SM) indirectTarget(w *Warp, in *isa.Instruction, guard uint32) int {
	vals := w.reg(in.SrcA)
	target := -1
	for l := 0; l < isa.WarpSize; l++ {
		if guard&(1<<l) == 0 {
			continue
		}
		v := int(vals[l])
		if target < 0 {
			target = v
		} else if v != target {
			s.execFault(w, "divergent indirect call target within the warp (R%d holds both %d and %d)",
				in.SrcA, target, v)
		}
	}
	if target < 0 || target >= len(s.gpu.Prog.Funcs) {
		s.execFault(w, "indirect call to invalid function index %d (program has %d functions)",
			target, len(s.gpu.Prog.Funcs))
	}
	return target
}

func (s *SM) execBarrier(now int64, w *Warp, mon Monitor) {
	b := w.Block
	w.AtBarrier = true
	w.Wake = farFuture
	w.SIMT.Advance()
	b.BarrierArrived++
	// Under the static wavefront limiter, a barrier-parked warp hands
	// its scheduling slot to an inactive sibling; otherwise a block
	// wider than the limit can never release the barrier.
	s.swlActivateSibling(now, b)
	s.checkBarrierContextSwitch(now, w)
	if b.BarrierArrived >= b.LiveWarps {
		releaseBarrier(now, b, mon)
	}
}

// releaseBarrier unparks every warp waiting at the block's barrier.
func releaseBarrier(now int64, b *Block, mon Monitor) {
	if mon != nil {
		mon.BarrierRelease(b.ID)
	}
	b.BarrierArrived = 0
	for _, bw := range b.Warps {
		if bw.AtBarrier {
			bw.AtBarrier = false
			if bw.Wake > now && bw.TrapOutstanding == 0 {
				bw.Wake = now
			}
		}
	}
}

func (s *SM) execExit(now int64, w *Warp, mon Monitor) {
	w.SIMT.Exit()
	if !w.SIMT.Empty() {
		return
	}
	w.Finished = true
	w.Wake = farFuture
	if mon != nil {
		mon.WarpExit(w.GWID)
	}
	b := w.Block
	b.LiveWarps--
	// A warp exiting may release a barrier its siblings wait at.
	if b.LiveWarps > 0 && b.BarrierArrived >= b.LiveWarps {
		releaseBarrier(now, b, mon)
	}
	s.warpStatusCheck(now, w)
	s.applySWL()
	if b.LiveWarps == 0 {
		s.gpu.completeBlock(now, s, b)
	}
}

// --- memory execution ---

func (s *SM) execGlobal(now int64, w *Warp, in *isa.Instruction, guard uint32) {
	sys := s.gpu.Sys
	addrs := w.reg(in.SrcA)
	isLoad := in.Op == isa.OpLdG
	var dst, val *[isa.WarpSize]uint32
	if isLoad {
		dst = w.reg(in.Dst)
	} else {
		val = w.reg(in.SrcC)
	}
	lineBytes := uint64(s.gpu.Cfg.L1D.Cache.LineBytes)
	secBytes := uint64(s.gpu.Cfg.L1D.Cache.SectorBytes)

	var accs []access
	for l := 0; l < isa.WarpSize; l++ {
		if guard&(1<<l) == 0 {
			continue
		}
		addr := uint64(addrs[l] + uint32(in.Imm))
		if isLoad {
			dst[l] = sys.ReadGlobal(uint32(addr))
		} else {
			sys.WriteGlobal(uint32(addr), val[l])
		}
		accs = coalesce(accs, addr, lineBytes, secBytes)
	}
	s.dispatchMem(now, w, in, accs, mem.ClassGlobal, isLoad, false)
}

func (s *SM) execLocal(now int64, w *Warp, in *isa.Instruction, guard uint32) {
	addrs := w.reg(in.SrcA)
	isLoad := in.Op == isa.OpLdL
	var dst, val *[isa.WarpSize]uint32
	if isLoad {
		dst = w.reg(in.Dst)
	} else {
		val = w.reg(in.SrcC)
	}
	lineBytes := uint64(s.gpu.Cfg.L1D.Cache.LineBytes)
	secBytes := uint64(s.gpu.Cfg.L1D.Cache.SectorBytes)

	var accs []access
	for l := 0; l < isa.WarpSize; l++ {
		if guard&(1<<l) == 0 {
			continue
		}
		byteAddr := addrs[l] + uint32(in.Imm)
		word := int(byteAddr / 4)
		if isLoad {
			dst[l] = *w.localWord(word, l)
		} else {
			*w.localWord(word, l) = val[l]
		}
		phys := s.gpu.localPhysAddr(w.GWID, word, l)
		accs = coalesce(accs, phys, lineBytes, secBytes)
	}
	class := mem.ClassLocalOther
	if in.Spill {
		class = mem.ClassLocalSpill
	}
	s.dispatchMem(now, w, in, accs, class, isLoad, true)
}

// smemBanks is the shared-memory bank count: successive 4-byte words
// map to successive banks, and active lanes whose words collide on a
// bank at distinct words serialise into extra transactions. Mirrored
// by vet's static bank-conflict multipliers (internal/vet/cost.go).
const smemBanks = 32

func (s *SM) execShared(now int64, w *Warp, in *isa.Instruction, guard uint32) {
	b := w.Block
	addrs := w.reg(in.SrcA)
	isLoad := in.Op == isa.OpLdS
	var dst, val *[isa.WarpSize]uint32
	if isLoad {
		dst = w.reg(in.Dst)
	} else {
		val = w.reg(in.SrcC)
	}
	var bytes [isa.WarpSize]uint32
	for l := 0; l < isa.WarpSize; l++ {
		if guard&(1<<l) == 0 {
			continue
		}
		addr := addrs[l] + uint32(in.Imm)
		bytes[l] = addr
		word := addr / 4
		if int(word) >= len(b.Shared) {
			s.execFault(w, "shared-memory access at word %d beyond the block's %d words", word, len(b.Shared))
		}
		if isLoad {
			dst[l] = b.Shared[word]
		} else {
			b.Shared[word] = val[l]
		}
	}

	// RF-cache absorption: a spill access whose slot lies within the
	// window below every active lane's frame top is served from the
	// register cache — same functional effect on the smem backing
	// store, no shared-memory transaction, register-file latency.
	absorbed := false
	if win := s.gpu.Cfg.RFCacheWindow; win > 0 && in.Spill && guard != 0 {
		absorbed = true
		spill := s.gpu.Prog.SmemSpillPerThread
		base := s.gpu.launch.SharedBytes
		for l := 0; l < isa.WarpSize; l++ {
			if guard&(1<<l) == 0 {
				continue
			}
			top := uint32(base + (w.WInBlock*isa.WarpSize+l+1)*spill)
			if bytes[l] >= top || top-bytes[l] > uint32(4*win) {
				absorbed = false
				break
			}
		}
	}

	txns := 0
	if guard != 0 && !absorbed {
		txns = smemTransactions(guard, &bytes)
	}
	st := s.stats()
	st.SmemTxns += uint64(txns)
	if absorbed {
		st.RFCacheHits++
	}
	if mon := s.gpu.San; mon != nil {
		mon.SharedTxn(w.GWID, b.ID, !isLoad, in.Spill, txns, absorbed)
	}
	if isLoad {
		if absorbed {
			w.ReadyAt[in.Dst] = now + s.gpu.Cfg.ALULat
		} else {
			// Each serialised pass beyond the first costs one cycle.
			w.ReadyAt[in.Dst] = now + s.gpu.Cfg.SmemLat + int64(txns-1)
		}
	}
}

// smemTransactions counts the serialised passes a shared access needs:
// the maximum, over banks, of the number of distinct words the active
// lanes address in that bank (same-word lanes broadcast in one pass).
func smemTransactions(guard uint32, bytes *[isa.WarpSize]uint32) int {
	var words [smemBanks][isa.WarpSize]uint32
	var n [smemBanks]int
	max := 0
	for l := 0; l < isa.WarpSize; l++ {
		if guard&(1<<l) == 0 {
			continue
		}
		wd := bytes[l] / 4
		bank := wd % smemBanks
		dup := false
		for i := 0; i < n[bank]; i++ {
			if words[bank][i] == wd {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		words[bank][n[bank]] = wd
		n[bank]++
		if n[bank] > max {
			max = n[bank]
		}
	}
	return max
}

// dispatchMem enqueues the coalesced accesses into the LSU.
func (s *SM) dispatchMem(now int64, w *Warp, in *isa.Instruction, accs []access, class mem.AccessClass, isLoad, isLocal bool) {
	if len(accs) == 0 {
		return
	}
	e := &lsuEntry{
		warp:     w,
		class:    class,
		isLoad:   isLoad,
		isLocal:  isLocal,
		dst:      in.Dst,
		accesses: accs,
	}
	if isLoad {
		w.ReadyAt[in.Dst] = farFuture
	}
	s.lsu.enqueue(e)
}

// coalesce merges a byte address into the access list (line + sector).
func coalesce(accs []access, addr, lineBytes, secBytes uint64) []access {
	lineAddr := addr &^ (lineBytes - 1)
	sector := uint8(1) << ((addr % lineBytes) / secBytes)
	for i := range accs {
		if accs[i].lineAddr == lineAddr {
			accs[i].sectors |= sector
			return accs
		}
	}
	return append(accs, access{lineAddr: lineAddr, sectors: sector})
}

// bankConflicts counts operand-collector serialisation: source operands
// whose physical register slots share a bank are read over extra cycles.
func (s *SM) bankConflicts(w *Warp, in *isa.Instruction, banks int) int {
	var bankOf [3]int
	n := 0
	if in.SrcA != isa.NoReg {
		bankOf[n] = w.slotIndex(in.SrcA) % banks
		n++
	}
	if in.SrcB != isa.NoReg {
		bankOf[n] = w.slotIndex(in.SrcB) % banks
		n++
	}
	if in.SrcC != isa.NoReg {
		bankOf[n] = w.slotIndex(in.SrcC) % banks
		n++
	}
	conflicts := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if bankOf[i] == bankOf[j] {
				conflicts++
			}
		}
	}
	return conflicts
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
