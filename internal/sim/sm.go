package sim

import (
	"carsgo/internal/isa"
	"carsgo/internal/mem"
	"carsgo/internal/simt"
	"carsgo/internal/stats"
)

// SM is one streaming multiprocessor.
type SM struct {
	id  int
	gpu *GPU

	l1d *mem.L1
	l1i *icache

	regArena []([isa.WarpSize]uint32)
	regAlloc *rangeAlloc

	warps    []*Warp // by slot; nil when free
	blocks   []*Block
	freeSmem int
	freeThr  int

	lsu lsu

	// schedLast is the greedy warp per scheduler (GTO).
	schedLast []int

	// stalledWarps is the CARS issue-stage list of register-deactivated
	// warps (§IV-B): scheduled warps that have not been allocated
	// register space, plus context-switched-out warps awaiting regs.
	stalledWarps []*Warp

	// carsLevel is this SM's current allocation-ladder index for newly
	// spawned thread blocks (the Fig. 5 state machine input).
	carsLevel int

	// nextWake is the earliest cycle at which a currently-blocked warp
	// may become issuable (used for idle-cycle skipping).
	nextWake int64

	issuedThisTick bool
}

func newSM(id int, g *GPU) *SM {
	cfg := &g.Cfg
	regSlots := cfg.RegFileSlots
	if cfg.UnlimitedRegs {
		// Idealized Virtual Warps: registers never limit occupancy.
		regSlots = cfg.MaxWarpsPerSM * 512 * 4
	}
	s := &SM{
		id:        id,
		gpu:       g,
		l1d:       mem.NewL1(cfg.L1D, g.Sys),
		l1i:       newICache(cfg.L1I, g.Sys),
		regArena:  make([]([isa.WarpSize]uint32), regSlots),
		regAlloc:  newRangeAlloc(regSlots),
		warps:     make([]*Warp, cfg.MaxWarpsPerSM),
		freeSmem:  cfg.SharedMemBytes,
		freeThr:   cfg.MaxThreadsPerSM,
		schedLast: make([]int, cfg.SchedulersPerSM),
	}
	s.lsu = lsu{sm: s, cap: cfg.LSUQueueCap}
	return s
}

// freeWarpSlots returns contiguous-capacity bookkeeping for admission.
func (s *SM) freeWarpSlots() int {
	n := 0
	for _, w := range s.warps {
		if w == nil {
			n++
		}
	}
	return n
}

// canAdmit checks the non-register occupancy limits for one more block.
func (s *SM) canAdmit(threads, smem, warps int) bool {
	cfg := &s.gpu.Cfg
	if !cfg.UnlimitedBlocks && len(s.blocks) >= cfg.MaxBlocksPerSM {
		return false
	}
	if !cfg.UnlimitedSmem && smem > s.freeSmem {
		return false
	}
	if threads > s.freeThr {
		return false
	}
	return s.freeWarpSlots() >= warps
}

// admitBlock schedules grid block blockID onto this SM at the given
// CARS ladder level (ignored for non-CARS runs). Returns false if the
// block does not fit.
func (s *SM) admitBlock(now int64, blockID int) bool {
	g := s.gpu
	L := g.launch
	warpsPerBlock := L.Dim.Warps()
	// The shared-memory spill ABI (CRAT-like comparator) reserves each
	// thread's spill frame in shared memory, charging it to occupancy.
	smemNeed := L.SharedBytes + g.Prog.SmemSpillPerThread*L.Dim.Block
	if !s.canAdmit(L.Dim.Block, smemNeed, warpsPerBlock) {
		return false
	}

	levelIdx := 0
	regsPerWarp := g.baseRegsPerWarp
	if g.Cfg.CARSEnabled && g.kstate != nil {
		levelIdx = s.carsLevel
		// Round the combined demand so allocation slack lands in the
		// register stack (the warp can always use extra stack slots).
		regsPerWarp = g.Cfg.roundRegs(g.kernelBaseRegs + g.plan.Levels[levelIdx].StackSlots)
	}
	if regsPerWarp > len(s.regArena) {
		regsPerWarp = len(s.regArena) // clamp: a warp can at most own the file
	}

	// Register admission: trial-allocate every warp's range. The full
	// block must fit, except that a CARS SM with no resident blocks may
	// admit with partial warp coverage and rely on context switching
	// (§III-B High-watermark, §IV-B).
	bases := make([]int, 0, warpsPerBlock)
	for wi := 0; wi < warpsPerBlock; wi++ {
		base, ok := s.regAlloc.Alloc(regsPerWarp)
		if !ok {
			break
		}
		bases = append(bases, base)
	}
	if len(bases) < warpsPerBlock {
		if !(g.Cfg.CARSEnabled && len(s.blocks) == 0 && len(bases) >= 1) {
			for _, base := range bases {
				s.regAlloc.Release(base, regsPerWarp)
			}
			return false
		}
	}

	b := &Block{
		ID:          blockID,
		StartCycle:  now,
		LiveWarps:   warpsPerBlock,
		SmemBytes:   smemNeed,
		ThreadsCnt:  L.Dim.Block,
		LevelIdx:    levelIdx,
		RegsPerWarp: regsPerWarp,
	}
	if smemNeed > 0 {
		b.Shared = make([]uint32, (smemNeed+3)/4)
	}
	if !g.Cfg.UnlimitedSmem {
		s.freeSmem -= smemNeed
	}
	s.freeThr -= L.Dim.Block

	slot := 0
	for wi := 0; wi < warpsPerBlock; wi++ {
		for s.warps[slot] != nil {
			slot++
		}
		w := &Warp{
			SM:       s,
			Slot:     slot,
			Block:    b,
			WInBlock: wi,
			GWID:     blockID*warpsPerBlock + wi,
			Local:    map[int]*localPage{},
		}
		if wi < len(bases) {
			w.RegBase = bases[wi]
			w.RegCount = regsPerWarp
			w.HasRegs = true
		} else {
			// Register-deactivated: parked on the stalled-warp list until
			// the warp-status-check or a context switch frees space.
			s.stalledWarps = append(s.stalledWarps, w)
		}
		s.initWarp(w)
		s.warps[slot] = w
		b.Warps = append(b.Warps, w)
	}
	s.blocks = append(s.blocks, b)
	if g.kernelStats.CARSLevels == nil {
		g.kernelStats.CARSLevels = map[string]int{}
	}
	if g.Cfg.CARSEnabled && g.plan != nil {
		g.kernelStats.CARSLevels[g.plan.Levels[levelIdx].Name()]++
	}
	g.kernelStats.RegSlotsAlloc += uint64(regsPerWarp * warpsPerBlock)
	// Resident warps exclude finished ones: a finished warp has already
	// released its registers (warpStatusCheck), so counting it would
	// credit the SM with occupancy no resource backs.
	resident := 0
	for _, bb := range s.blocks {
		for _, bw := range bb.Warps {
			if !bw.Finished {
				resident++
			}
		}
	}
	// Only the opening admission wave defines the launch's occupancy
	// figure: it is the steady state the occupancy model predicts,
	// whereas drain-phase re-admissions transiently overshoot it.
	if g.waveOpen && resident > g.kernelStats.ResidentWarps {
		g.kernelStats.ResidentWarps = resident
	}
	if mon := g.San; mon != nil {
		mon.BlockAdmit(s.id, blockID, levelIdx, regsPerWarp, warpsPerBlock, resident)
	}

	// SWL activation.
	s.applySWL()
	return true
}

// initWarp resets a warp's architectural state for kernel entry.
func (s *SM) initWarp(w *Warp) {
	g := s.gpu
	mask := blockTailMask(w.Block.ThreadsCnt, w.WInBlock)
	w.SIMT.Reset(g.kernelFunc, mask)
	w.KernelBase = g.kernelBaseRegs
	stackSlots := 0
	if g.Cfg.CARSEnabled {
		stackSlots = w.Block.RegsPerWarp - g.kernelBaseRegs
		if stackSlots < 0 {
			stackSlots = 0
		}
	}
	w.CStack.Reset(stackSlots)
	for i := range w.ReadyAt {
		w.ReadyAt[i] = 0
	}
	for i := range w.PredReadyAt {
		w.PredReadyAt[i] = 0
	}
	w.Preds = [8]uint32{}
	w.Wake = 0
	if !w.HasRegs {
		w.Wake = farFuture // deactivated: woken by status check / switch
	}
	w.IBufFunc, w.IBufPC = -1, -1
	w.AtBarrier, w.Finished, w.SwappedOut = false, false, false
	w.TrapOutstanding = 0
	w.DynCallDepth = 0
	if w.HasRegs {
		s.zeroRegs(w)
		s.loadParams(w)
	}
}

func (s *SM) zeroRegs(w *Warp) {
	for i := 0; i < w.RegCount; i++ {
		w.SM.regArena[w.RegBase+i] = [isa.WarpSize]uint32{}
	}
}

// loadParams deposits kernel launch parameters into R4.. of every lane
// and, under the shared-memory spill ABI, initialises R0 as the warp's
// spill stack pointer (the top of its frame above the user's shared
// allocation; the frame grows down).
func (s *SM) loadParams(w *Warp) {
	for pi, v := range s.gpu.launch.Params {
		r := w.reg(uint8(4 + pi))
		for l := 0; l < isa.WarpSize; l++ {
			r[l] = v
		}
	}
	if spill := s.gpu.Prog.SmemSpillPerThread; spill > 0 {
		r := w.reg(0)
		for l := 0; l < isa.WarpSize; l++ {
			tid := w.WInBlock*isa.WarpSize + l
			r[l] = uint32(s.gpu.launch.SharedBytes + (tid+1)*spill)
		}
	}
	// loadParams runs exactly once per fresh architectural state (warp
	// admission or first register activation), never on context-switch
	// resume, so it is the warp-birth event for the sanitizer.
	if mon := s.gpu.San; mon != nil {
		mon.WarpStart(w.GWID, w.Block.ID, w.WInBlock, s.gpu.kernelFunc, w.CStack.Slots, w.SIMT.Top().Mask)
	}
}

// blockTailMask returns the active mask for warp wi of a block with n
// threads (the last warp may be partial).
func blockTailMask(n, wi int) uint32 {
	remaining := n - wi*isa.WarpSize
	if remaining >= isa.WarpSize {
		return simt.FullMask
	}
	if remaining <= 0 {
		return 0
	}
	return (uint32(1) << remaining) - 1
}

// applySWL keeps at most SWLLimit warps schedulable.
func (s *SM) applySWL() {
	limit := s.gpu.Cfg.SWLLimit
	if limit <= 0 {
		for _, w := range s.warps {
			if w != nil {
				w.SWLActive = true
			}
		}
		return
	}
	n := 0
	for _, w := range s.warps {
		if w == nil || w.Finished {
			continue
		}
		if w.SWLActive {
			n++
		} else if w.Wake < farFuture {
			w.Wake = farFuture // parked until the limiter activates it
		}
	}
	for _, w := range s.warps {
		if n >= limit {
			break
		}
		if w != nil && !w.Finished && !w.SWLActive {
			w.SWLActive = true
			if w.TrapOutstanding == 0 && w.Wake == farFuture {
				w.Wake = 0
			}
			n++
		}
	}
}

// swlActivateSibling activates one SWL-parked warp, preferring the
// given block, so barrier progress is always possible.
func (s *SM) swlActivateSibling(now int64, b *Block) {
	if s.gpu.Cfg.SWLLimit <= 0 {
		return
	}
	var fallback *Warp
	for _, w := range s.warps {
		if w == nil || w.Finished || w.SWLActive {
			continue
		}
		if w.Block == b {
			s.swlActivate(now, w)
			return
		}
		if fallback == nil {
			fallback = w
		}
	}
	if fallback != nil {
		s.swlActivate(now, fallback)
	}
}

func (s *SM) swlActivate(now int64, w *Warp) {
	w.SWLActive = true
	if w.TrapOutstanding == 0 && w.Wake == farFuture && !w.AtBarrier && w.HasRegs && !w.SwappedOut {
		w.Wake = now
	}
}

// tick advances the SM by one cycle.
func (s *SM) tick(now int64) {
	s.issuedThisTick = false
	s.nextWake = farFuture
	s.lsu.tick(now)
	nsched := s.gpu.Cfg.SchedulersPerSM
	for sc := 0; sc < nsched; sc++ {
		s.scheduleOne(now, sc)
	}
}

// scheduleOne lets scheduler sc issue at most one instruction (GTO:
// greedy on the last warp, then oldest-first).
func (s *SM) scheduleOne(now int64, sc int) {
	nsched := s.gpu.Cfg.SchedulersPerSM
	last := s.schedLast[sc]
	if last >= 0 && last < len(s.warps) {
		if w := s.warps[last]; w != nil && last%nsched == sc {
			if s.tryIssue(now, w) {
				s.issuedThisTick = true
				return
			}
		}
	}
	for slot := sc; slot < len(s.warps); slot += nsched {
		if slot == last {
			continue
		}
		w := s.warps[slot]
		if w == nil {
			continue
		}
		// Fast gate: Wake aggregates every known stall (scoreboard parks,
		// traps, barriers, deactivation); it may be optimistic but never
		// late, so skipping here is always safe.
		if w.Wake > now {
			if w.Wake < s.nextWake {
				s.nextWake = w.Wake
			}
			continue
		}
		if s.tryIssue(now, w) {
			s.schedLast[sc] = slot
			s.issuedThisTick = true
			return
		}
	}
}

// noteWake records a candidate wake cycle for idle skipping.
func (s *SM) noteWake(c int64) {
	if c < s.nextWake {
		s.nextWake = c
	}
}

// tryIssue issues w's next instruction if all hazards clear.
func (s *SM) tryIssue(now int64, w *Warp) bool {
	if w.Finished || w.AtBarrier || w.SwappedOut || !w.HasRegs || !w.SWLActive {
		return false
	}
	if w.TrapOutstanding > 0 {
		return false
	}
	if w.Wake > now {
		s.noteWake(w.Wake)
		return false
	}
	if w.SIMT.Empty() {
		return false
	}
	top := w.SIMT.Top()
	code := s.gpu.Prog.Funcs[top.Func].Code
	if top.PC >= len(code) {
		s.execFault(w, "PC %d past the end of %s (%d instructions)", top.PC,
			s.gpu.Prog.Funcs[top.Func].Name, len(code))
	}
	in := &code[top.PC]

	// Structural hazard first: with the LSU saturated (the common state
	// of memory-bound phases) this is one boolean per warp.
	if (in.Op.IsGlobal() || in.Op.IsLocal()) && !s.lsu.hasSpace() {
		return false
	}
	// Scoreboard: the hazard clears at a known cycle, so park the warp
	// until then — later scans skip it with a single compare.
	if ok, at := w.regsReady(now, in); !ok {
		if at > w.Wake {
			w.Wake = at // load completions lower this again (lsu.finish)
		}
		s.noteWake(at)
		return false
	}
	// Instruction fetch, through the warp's instruction buffer.
	if w.IBufFunc != top.Func || w.IBufPC != top.PC {
		if ready, wake := s.l1i.Fetch(now, s.gpu.funcBase[top.Func]+uint64(top.PC)*16); !ready {
			w.Wake = wake
			s.noteWake(wake)
			return false
		}
		w.IBufFunc, w.IBufPC = top.Func, top.PC
	}
	s.execute(now, w, in)
	return true
}

// recordStats routes per-SM counters into the launch-wide kernel stats.
func (s *SM) stats() *stats.Kernel { return s.gpu.kernelStats }
