package sim

import "carsgo/internal/mem"

// icache is the per-SM L1 instruction cache. Contemporary GPU
// instructions are 16B wide, so code footprint pressure — which full
// inlining aggravates (Fig. 16) — shows up as L1I misses and front-end
// stalls here.
type icache struct {
	tags    *mem.Cache
	sys     *mem.System
	pending map[uint64]int64 // line -> fill-complete cycle
}

func newICache(cfg mem.CacheConfig, sys *mem.System) *icache {
	return &icache{tags: mem.NewCache(cfg), sys: sys, pending: map[uint64]int64{}}
}

// Fetch models an instruction fetch at byte address addr. It returns
// ready=true when the line is resident; otherwise the warp must stall
// until the returned wake cycle.
func (ic *icache) Fetch(now int64, addr uint64) (ready bool, wake int64) {
	lineAddr := ic.tags.LineAddr(addr)
	sector := uint8(1) << ic.tags.SectorOf(addr)
	hit, miss := ic.tags.Access(lineAddr, sector, mem.ClassInst)
	if miss == 0 {
		_ = hit
		return true, 0
	}
	if done, ok := ic.pending[lineAddr]; ok {
		return false, done
	}
	// Fetch the whole line: sequential code makes full-line fills the
	// right prefetch policy for an icache.
	full := uint8(1)<<ic.tags.Config().Sectors() - 1
	done := ic.sys.FetchLine(now, lineAddr, full, mem.ClassInst)
	ic.pending[lineAddr] = done
	ic.sys.Schedule(done, func(cycle int64) {
		ic.tags.Fill(lineAddr, full)
		delete(ic.pending, lineAddr)
	})
	return false, done
}
