// Package sim is the cycle-level GPU model: SM cores with greedy-then-
// oldest warp schedulers, a register scoreboard, SIMT reconvergence,
// an LSU with sector-level L1D bandwidth, instruction caches, barriers,
// and a thread-block scheduler with occupancy limits — plus the CARS
// register-stack runtime (issue-stage free-register checks, traps,
// stalled-warp list, warp-status-check releases and barrier context
// switches, §IV).
//
// The simulator is also functional: every instruction executes on real
// 32-lane register values, so workloads compute verifiable results and
// CARS' renaming can be checked for semantic transparency against the
// baseline ABI.
package sim

import (
	"carsgo/internal/cars"
	"carsgo/internal/mem"
)

// Config parameterises one simulated GPU.
type Config struct {
	Name string

	// Core geometry.
	NumSMs          int
	MaxWarpsPerSM   int
	MaxBlocksPerSM  int
	MaxThreadsPerSM int
	SchedulersPerSM int

	// RegFileSlots is the register file capacity per SM in warp-register
	// slots (one slot = 32 lanes × 4B = 128B). V100: 256KB → 2048 slots.
	RegFileSlots int
	// RegGranularity rounds per-warp register allocations (slots).
	RegGranularity int

	SharedMemBytes int // per SM

	// L1D cache and port bandwidth.
	L1D                mem.L1Config
	L1DSectorsPerCycle int
	LSUQueueCap        int

	// L1I instruction cache.
	L1I mem.CacheConfig

	// Shared memory and execution latencies (cycles).
	ALULat  int64
	SFULat  int64
	SmemLat int64

	// Memory system (L2 + DRAM), shared across SMs.
	Mem            mem.SystemConfig
	GlobalMemWords int

	// Idealisations and limiters (§V-D).
	SWLLimit        int  // >0: static wavefront limiter warp cap per SM
	UnlimitedRegs   bool // Idealized Virtual Warps: registers
	UnlimitedSmem   bool // Idealized Virtual Warps: shared memory
	UnlimitedBlocks bool // Idealized Virtual Warps: thread-block slots

	// CARS.
	CARSEnabled bool
	CARSPolicy  cars.Policy
	// CARSIssueExtra adds the paper's extra issue/operand-collector
	// pipeline cycle to every result latency (§IV-C worst case).
	CARSIssueExtra int64

	// SharedSpillABI compiles workloads with the CRAT-like shared-memory
	// spill ABI (§VII comparator): spills bypass the L1D but each warp's
	// spill frame is charged against shared memory, costing occupancy.
	// Mutually exclusive with CARSEnabled.
	SharedSpillABI bool

	// RFCacheWindow fronts the shared-spill frames with a per-thread
	// register-file cache of this many words (the compiler-assisted
	// RF-cache backend of the spill-policy lattice): a spill access
	// whose slot lies within the window below the frame top is served
	// from registers (ALU latency, no shared-memory transaction), and
	// admission charges the window as extra register slots per warp.
	// Requires SharedSpillABI; the shared-memory frame itself stays
	// allocated as the cache's backing store.
	RFCacheWindow int

	// WindowedStacks replaces CARS' exact-FRU frames with fixed-size
	// register windows (the §VII related-work alternative): every call
	// consumes a window sized for the program's largest FRU, wasting
	// the difference. Requires CARSEnabled.
	WindowedStacks bool

	// TimelineWindow is the bandwidth-sample window in cycles (Fig. 11);
	// 0 disables timeline collection.
	TimelineWindow int64

	// RFBanks models operand-collector register-file banking: reading
	// two or more operands whose physical slots share a bank serialises
	// the collector and adds one cycle per conflict to the result
	// latency. 0 or 1 disables the model (the paper's evaluation does
	// not isolate banking; this is an optional fidelity knob and the
	// basis of an ablation). Note that CARS renaming relocates
	// callee-saved registers into the stack region, changing their bank
	// assignment relative to the baseline.
	RFBanks int
}

// WarpsPerScheduler returns the warp slots owned by each scheduler.
func (c *Config) WarpsPerScheduler() int {
	return (c.MaxWarpsPerSM + c.SchedulersPerSM - 1) / c.SchedulersPerSM
}

// roundRegs rounds a per-warp register demand up to the allocation
// granularity.
func (c *Config) roundRegs(slots int) int {
	g := c.RegGranularity
	if g <= 1 {
		return slots
	}
	return (slots + g - 1) / g * g
}
