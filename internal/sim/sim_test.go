package sim_test

import (
	"testing"

	"carsgo/internal/abi"
	"carsgo/internal/config"
	"carsgo/internal/isa"
	"carsgo/internal/kir"
	"carsgo/internal/mem"
	"carsgo/internal/sim"
)

// testModule builds a small program: main -> f -> g with callee-saved
// register use, computing out[tid] = (tid+1)*3 + tid.
func testModule() *kir.Module {
	m := &kir.Module{Name: "test"}

	g := kir.NewFunc("g").
		IMulI(4, 4, 3).
		Ret().
		MustBuild()

	f := kir.NewFunc("f").
		SetCalleeSaved(2).
		Mov(16, 4). // save arg
		IAddI(4, 4, 1).
		Call("g").
		IAdd(4, 4, 16). // (arg+1)*3 + arg
		Ret().
		MustBuild()

	k := kir.NewKernel("main")
	k.S2R(5, isa.SrTID).
		S2R(6, isa.SrCTAID).
		S2R(7, isa.SrNTID).
		IMad(5, 6, 7, 5). // global tid
		ShlI(9, 5, 2).
		IAdd(8, 4, 9). // out + 4*tid
		Mov(16, 8).    // keep address in a base callee-saved reg
		Mov(4, 5).     // arg = tid
		Call("f").
		StG(16, 0, 4).
		Exit()
	m.AddFunc(k.MustBuild())
	m.AddFunc(f)
	m.AddFunc(g)
	return m
}

func runKernel(t *testing.T, cfg sim.Config, mode abi.Mode, grid, block int) (*sim.GPU, []uint32) {
	t.Helper()
	prog, err := abi.Link(mode, testModule())
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	gpu, err := sim.New(cfg, prog)
	if err != nil {
		t.Fatalf("new gpu: %v", err)
	}
	out := gpu.Alloc(grid * block)
	_, err = gpu.Run(isa.Launch{
		Kernel: "main",
		Dim:    isa.Dim3{Grid: grid, Block: block},
		Params: []uint32{out},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	res := make([]uint32, grid*block)
	copy(res, gpu.Global()[out/4:out/4+uint32(grid*block)])
	return gpu, res
}

func expectValues(t *testing.T, got []uint32) {
	t.Helper()
	for tid, v := range got {
		want := uint32(tid+1)*3 + uint32(tid)
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", tid, v, want)
		}
	}
}

func TestBaselineFunctional(t *testing.T) {
	_, got := runKernel(t, config.V100(), abi.Baseline, 4, 96)
	expectValues(t, got)
}

func TestCARSFunctional(t *testing.T) {
	_, got := runKernel(t, config.WithCARS(config.V100()), abi.CARS, 4, 96)
	expectValues(t, got)
}

func TestBaselineSpills(t *testing.T) {
	prog, err := abi.Link(abi.Baseline, testModule())
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := sim.New(config.V100(), prog)
	if err != nil {
		t.Fatal(err)
	}
	out := gpu.Alloc(256)
	st, err := gpu.Run(isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 2, Block: 128}, Params: []uint32{out}})
	if err != nil {
		t.Fatal(err)
	}
	if st.L1D.Accesses[mem.ClassLocalSpill] == 0 {
		t.Error("baseline run produced no spill/fill traffic")
	}
	if st.Calls == 0 {
		t.Error("no calls recorded")
	}
}

func TestCARSEliminatesSpills(t *testing.T) {
	prog, err := abi.Link(abi.CARS, testModule())
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := sim.New(config.WithCARS(config.V100()), prog)
	if err != nil {
		t.Fatal(err)
	}
	out := gpu.Alloc(256)
	st, err := gpu.Run(isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 2, Block: 128}, Params: []uint32{out}})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.L1D.Accesses[mem.ClassLocalSpill]; got != 0 {
		t.Errorf("CARS run produced %d spill sectors, want 0", got)
	}
	if st.TrapCalls != 0 {
		t.Errorf("unexpected traps: %d", st.TrapCalls)
	}
}

func TestBaselineVsCARSSameResults(t *testing.T) {
	_, base := runKernel(t, config.V100(), abi.Baseline, 6, 160)
	_, crs := runKernel(t, config.WithCARS(config.V100()), abi.CARS, 6, 160)
	for i := range base {
		if base[i] != crs[i] {
			t.Fatalf("out[%d]: baseline %d, CARS %d", i, base[i], crs[i])
		}
	}
}
