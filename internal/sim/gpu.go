package sim

import (
	"context"
	"fmt"

	"carsgo/internal/callgraph"
	"carsgo/internal/cars"
	"carsgo/internal/isa"
	"carsgo/internal/mem"
	"carsgo/internal/stats"
)

// localWordsPerWarp sizes each warp's virtual local address space in
// words: the software stack, the CARS trap spill window, and the
// context-switch save area.
const localWordsPerWarp = 16384

// maxLaunchCycles guards against simulation deadlock.
const maxLaunchCycles = int64(1) << 31

// debugHang enables coarse progress prints (see SetDebugHang); it is a
// diagnostic for runs that appear stuck.
var debugHang = false

// TraceSink receives one event per issued warp-instruction, in issue
// order — the role NVBit's instrumentation plays for the paper (§V-A).
// A nil sink costs one branch per instruction.
type TraceSink interface {
	OnIssue(sm, gwid int, fn, pc int, op isa.Op, activeMask uint32)
}

// GPU is one simulated device: SMs plus the shared memory system.
// A GPU persists across kernel launches (caches stay warm, the CARS
// controller remembers per-kernel allocation performance).
type GPU struct {
	Cfg  Config
	Prog *isa.Program
	Sys  *mem.System

	// Trace receives issue events when non-nil (see TraceSink).
	Trace TraceSink

	// San receives architectural-state events when non-nil (see
	// Monitor); internal/san implements it as a shadow sanitizer.
	San Monitor

	Controller *cars.Controller

	sms       []*SM
	funcBase  []uint64
	localBase uint64

	// Per-launch state.
	launch          *isa.Launch
	kernelFunc      int
	kernelBaseRegs  int
	baseRegsPerWarp int
	plan            *cars.Plan
	kstate          *cars.KernelState
	windowSize      int // fixed frame size under WindowedStacks
	analysis        *callgraph.Analysis
	kernelStats     *stats.Kernel
	nextBlock       int
	blocksDone      int
	totalBlocks     int
	admitDirty      bool
	// waveOpen is true while the launch's opening admission wave runs
	// (the first scheduleBlocks pass, before any execution): the
	// residency it reaches is the launch's occupancy figure.
	waveOpen bool

	// Timeline collection.
	tlWindow int64
	tlCur    stats.BWSample

	// clock is the device-global cycle counter; it persists across
	// launches so shared-resource state (L2/DRAM bandwidth bookkeeping,
	// in-flight events) stays on one timebase.
	clock int64
}

// New builds a GPU for a program.
func New(cfg Config, prog *isa.Program) (*GPU, error) {
	if cfg.CARSEnabled != prog.CARS {
		return nil, fmt.Errorf("sim: config CARS=%v but program compiled with CARS=%v", cfg.CARSEnabled, prog.CARS)
	}
	g := &GPU{
		Cfg:        cfg,
		Prog:       prog,
		Sys:        mem.NewSystem(cfg.Mem, cfg.GlobalMemWords),
		Controller: cars.NewController(),
	}
	g.localBase = uint64(cfg.GlobalMemWords) * 4
	// Lay out code addresses: 128B-aligned functions, 16B instructions.
	addr := uint64(0)
	for _, f := range prog.Funcs {
		g.funcBase = append(g.funcBase, addr)
		addr += uint64(len(f.Code)) * 16
		addr = (addr + 127) &^ 127
	}
	for i := 0; i < cfg.NumSMs; i++ {
		g.sms = append(g.sms, newSM(i, g))
	}
	return g, nil
}

// Alloc reserves global memory (words), returning the byte address.
func (g *GPU) Alloc(words int) uint32 { return g.Sys.Alloc(words) }

// Global exposes the functional global memory for workload init/verify.
func (g *GPU) Global() []uint32 { return g.Sys.Global() }

// localPhysAddr maps (warp, local word, lane) to a physical byte
// address above global memory. Consecutive lanes of one word pack into
// one 128B line, so warp-uniform local accesses fully coalesce, as the
// hardware's local address interleaving achieves.
func (g *GPU) localPhysAddr(gwid, word, lane int) uint64 {
	return g.localBase + uint64((gwid*localWordsPerWarp+word)*isa.WarpSize+lane)*4
}

// CodeBytes returns the program's instruction footprint in bytes.
func (g *GPU) CodeBytes() uint64 {
	last := len(g.funcBase) - 1
	return g.funcBase[last] + uint64(len(g.Prog.Funcs[last].Code))*16
}

// Run executes one kernel launch to completion and returns its stats.
// Functional-execution faults (see ExecError) surface as the returned
// error rather than a panic.
func (g *GPU) Run(launch isa.Launch) (*stats.Kernel, error) {
	return g.RunContext(context.Background(), launch)
}

// ctxCheckInterval is how many scheduler-loop iterations pass between
// cooperative context checks: frequent enough that a cancelled launch
// dies within microseconds of wall time, rare enough that the check
// never shows up in a profile.
const ctxCheckInterval = 4096

// RunContext is Run with cooperative cancellation: the cycle loop
// polls ctx and abandons the launch with a structured *CancelError
// when the context ends. The GPU must not be reused after a
// cancellation — mid-launch state (resident blocks, in-flight memory
// events) is abandoned, not rolled back.
func (g *GPU) RunContext(ctx context.Context, launch isa.Launch) (st *stats.Kernel, err error) {
	defer func() {
		if r := recover(); r != nil {
			ee, ok := r.(*ExecError)
			if !ok {
				panic(r) // simulator bug: keep the stack trace
			}
			st, err = nil, ee
		}
	}()
	kf, err := g.Prog.Kernel(launch.Kernel)
	if err != nil {
		return nil, err
	}
	if launch.Dim.Grid <= 0 || launch.Dim.Block <= 0 {
		return nil, fmt.Errorf("sim: bad launch dims %+v", launch.Dim)
	}
	if launch.Dim.Block > g.Cfg.MaxThreadsPerSM {
		return nil, fmt.Errorf("sim: block of %d threads exceeds SM capacity", launch.Dim.Block)
	}
	if launch.Dim.Block > isa.MaxBlockThreads {
		return nil, fmt.Errorf("sim: block of %d threads exceeds the architectural limit of %d",
			launch.Dim.Block, isa.MaxBlockThreads)
	}
	if g.San != nil && g.Cfg.WindowedStacks {
		// Windowed stacks skip the PUSH/POP micro-ops and rename whole
		// fixed-size windows, so the shadow stack's exact-FRU model
		// would diverge from the architectural pointers by design.
		return nil, fmt.Errorf("sim: the sanitizer does not model windowed register stacks")
	}

	g.launch = &launch
	g.kernelFunc = kf
	g.kernelStats = &stats.Kernel{Name: launch.Kernel, CARSLevels: map[string]int{}}
	g.nextBlock, g.blocksDone = 0, 0
	g.totalBlocks = launch.Dim.Grid
	g.tlWindow = g.Cfg.TimelineWindow
	g.tlCur = stats.BWSample{}

	// Snapshot cache stats so the launch reports deltas.
	l1dBefore := make([]mem.CacheStats, len(g.sms))
	l1iBefore := make([]mem.CacheStats, len(g.sms))
	for i, sm := range g.sms {
		l1dBefore[i] = *sm.l1d.Stats()
		l1iBefore[i] = sm.l1i.tags.Stats
	}
	l2Before := g.Sys.L2().Stats
	dramBefore := g.Sys.Stats.DRAMSectors

	// Link-time analysis + CARS plan.
	an, err := callgraph.Analyze(g.Prog, launch.Kernel)
	if err != nil {
		return nil, err
	}
	g.analysis = an
	g.kernelBaseRegs = g.Cfg.roundRegs(an.KernelBase)
	// Baseline allocation: worst-case register usage over the kernel's
	// reachable call graph (§II), not the whole program.
	g.baseRegsPerWarp = g.Cfg.roundRegs(an.MaxRegs)
	if win := g.Cfg.RFCacheWindow; win > 0 {
		// The RF-cache backend provisions its window at admission: one
		// cached spill word per thread is one vector register per warp,
		// on top of the kernel's base demand.
		if g.Cfg.CARSEnabled {
			return nil, fmt.Errorf("sim: RFCacheWindow requires the shared-spill ABI, not CARS")
		}
		g.baseRegsPerWarp = g.Cfg.roundRegs(an.MaxRegs + win)
	}

	if g.Cfg.CARSEnabled {
		g.plan = cars.NewPlan(an, g.maxWarpsOther(launch), g.Cfg.RegFileSlots)
		g.windowSize = g.plan.MaxFRU
		g.kstate = g.Controller.Launch(launch.Kernel, g.plan)
		for _, sm := range g.sms {
			sm.carsLevel = g.kstate.InitialLevel(sm.id, g.Cfg.CARSPolicy)
		}
	} else {
		g.plan, g.kstate = nil, nil
		if !g.Cfg.UnlimitedRegs &&
			g.baseRegsPerWarp*launch.Dim.Warps() > g.Cfg.RegFileSlots {
			return nil, fmt.Errorf("sim: kernel %s needs %d reg slots per block, file has %d",
				launch.Kernel, g.baseRegsPerWarp*launch.Dim.Warps(), g.Cfg.RegFileSlots)
		}
	}

	g.admitDirty = true
	g.waveOpen = true
	start := g.clock
	cycle := g.clock
	ctxDone := ctx.Done()
	sinceCheck := 0
	for g.blocksDone < g.totalBlocks {
		if sinceCheck++; sinceCheck >= ctxCheckInterval {
			sinceCheck = 0
			select {
			case <-ctxDone:
				return nil, &CancelError{
					Kernel: launch.Kernel, Cycles: cycle - start,
					BlocksDone: g.blocksDone, TotalBlocks: g.totalBlocks,
					Err: ctx.Err(),
				}
			default:
			}
		}
		g.Sys.RunEvents(cycle)
		if g.admitDirty {
			g.scheduleBlocks(cycle)
		}
		anyIssued := false
		anyLSU := false
		minWake := int64(-1)
		for _, sm := range g.sms {
			sm.tick(cycle)
			anyIssued = anyIssued || sm.issuedThisTick
			anyLSU = anyLSU || sm.lsu.busy()
			if sm.nextWake < farFuture {
				if minWake < 0 || sm.nextWake < minWake {
					minWake = sm.nextWake
				}
			}
		}
		cycle++
		if !anyIssued && !anyLSU && !g.admitDirty {
			// Idle: jump to the next interesting cycle.
			next := g.Sys.NextEventCycle()
			if minWake >= 0 && (next < 0 || minWake < next) {
				next = minWake
			}
			if next > cycle {
				cycle = next
			} else if next < 0 && g.blocksDone < g.totalBlocks {
				return nil, fmt.Errorf("sim: deadlock at cycle %d: %d/%d blocks done",
					cycle, g.blocksDone, g.totalBlocks)
			}
		}
		if debugHang && cycle%5_000_000 == 0 {
			fmt.Printf("sim: progress cycle=%d blocks=%d/%d instrs=%d\n",
				cycle, g.blocksDone, g.totalBlocks, g.kernelStats.TotalInstructions())
		}
		if cycle-start > maxLaunchCycles {
			return nil, fmt.Errorf("sim: launch exceeded %d cycles", maxLaunchCycles)
		}
	}
	g.Sys.RunEvents(cycle + g.Cfg.Mem.DRAMLatency + 10_000)
	g.clock = cycle

	st = g.kernelStats
	st.Cycles = cycle - start
	for i, sm := range g.sms {
		st.L1D.Accesses = addClass(st.L1D.Accesses, sm.l1d.Stats().Accesses, l1dBefore[i].Accesses)
		st.L1D.Misses = addClass(st.L1D.Misses, sm.l1d.Stats().Misses, l1dBefore[i].Misses)
		st.L1D.LineFills += sm.l1d.Stats().LineFills - l1dBefore[i].LineFills
		st.L1D.Writebacks += sm.l1d.Stats().Writebacks - l1dBefore[i].Writebacks
		st.L1I.Accesses = addClass(st.L1I.Accesses, sm.l1i.tags.Stats.Accesses, l1iBefore[i].Accesses)
		st.L1I.Misses = addClass(st.L1I.Misses, sm.l1i.tags.Stats.Misses, l1iBefore[i].Misses)
	}
	st.L2.Accesses = addClass(st.L2.Accesses, g.Sys.L2().Stats.Accesses, l2Before.Accesses)
	st.L2.Misses = addClass(st.L2.Misses, g.Sys.L2().Stats.Misses, l2Before.Misses)
	st.DRAMSectors = g.Sys.Stats.DRAMSectors - dramBefore
	if g.tlWindow > 0 && (g.tlCur.GlobalSectors > 0 || g.tlCur.LocalSectors > 0) {
		st.Timeline = append(st.Timeline, g.tlCur)
	}
	if g.kstate != nil {
		g.kstate.FinishLaunch()
	}
	return st, nil
}

func addClass(dst, after, before [mem.NumClasses]uint64) [mem.NumClasses]uint64 {
	for i := range dst {
		dst[i] += after[i] - before[i]
	}
	return dst
}

// maxWarpsOther computes the per-SM warp bound from the non-register
// occupancy limits (§III-B: known at kernel launch time).
func (g *GPU) maxWarpsOther(l isa.Launch) int {
	cfg := &g.Cfg
	wpb := l.Dim.Warps()
	blocks := cfg.MaxBlocksPerSM
	if cfg.UnlimitedBlocks {
		blocks = 1 << 20
	}
	if byThr := cfg.MaxThreadsPerSM / l.Dim.Block; byThr < blocks {
		blocks = byThr
	}
	if l.SharedBytes > 0 && !cfg.UnlimitedSmem {
		if bySmem := cfg.SharedMemBytes / l.SharedBytes; bySmem < blocks {
			blocks = bySmem
		}
	}
	if byWarps := cfg.MaxWarpsPerSM / wpb; byWarps < blocks {
		blocks = byWarps
	}
	if blocks > l.Dim.Grid {
		blocks = l.Dim.Grid
	}
	return blocks * wpb
}

// scheduleBlocks assigns pending grid blocks to SMs round-robin.
func (g *GPU) scheduleBlocks(now int64) {
	g.admitDirty = false
	for progress := true; progress && g.nextBlock < g.totalBlocks; {
		progress = false
		for _, sm := range g.sms {
			if g.nextBlock >= g.totalBlocks {
				break
			}
			if g.Cfg.CARSEnabled && g.kstate != nil {
				sm.carsLevel = g.kstate.NextLevel(sm.carsLevel, g.Cfg.CARSPolicy)
			}
			if sm.admitBlock(now, g.nextBlock) {
				g.nextBlock++
				progress = true
			}
		}
	}
	g.waveOpen = false
}

// completeBlock retires a finished block from an SM.
func (g *GPU) completeBlock(now int64, s *SM, b *Block) {
	st := g.kernelStats
	dur := now - b.StartCycle
	st.WarpCycles += uint64(len(b.Warps)) * uint64(dur)
	if g.kstate != nil {
		g.kstate.Record(b.LevelIdx, dur, len(s.blocks))
	}
	for _, w := range b.Warps {
		if w.CStack.MaxRSP > st.MaxRSP {
			st.MaxRSP = w.CStack.MaxRSP
		}
		if w.HasRegs {
			s.regAlloc.Release(w.RegBase, w.RegCount)
			w.HasRegs = false
		}
		s.removeStalled(w)
		s.warps[w.Slot] = nil
	}
	if !g.Cfg.UnlimitedSmem {
		s.freeSmem += b.SmemBytes
	}
	s.freeThr += b.ThreadsCnt
	for i, bb := range s.blocks {
		if bb == b {
			s.blocks = append(s.blocks[:i], s.blocks[i+1:]...)
			break
		}
	}
	g.blocksDone++
	g.admitDirty = true
	if mon := g.San; mon != nil {
		mon.BlockRetire(s.id, b.ID)
	}
}

// noteTraffic feeds the bandwidth timeline (Fig. 11).
func (s *SM) noteTraffic(now int64, class mem.AccessClass, sectors int) {
	g := s.gpu
	if g.tlWindow <= 0 {
		return
	}
	winStart := now / g.tlWindow * g.tlWindow
	if g.tlCur.Cycle != winStart {
		if g.tlCur.GlobalSectors > 0 || g.tlCur.LocalSectors > 0 {
			g.kernelStats.Timeline = append(g.kernelStats.Timeline, g.tlCur)
		}
		g.tlCur = stats.BWSample{Cycle: winStart}
	}
	switch class {
	case mem.ClassGlobal:
		g.tlCur.GlobalSectors += uint64(sectors)
	case mem.ClassLocalSpill, mem.ClassLocalOther:
		g.tlCur.LocalSectors += uint64(sectors)
	}
}

// SetDebugHang toggles coarse progress printing (test diagnostics).
func SetDebugHang(v bool) { debugHang = v }

// Occupancy describes the per-SM residency a launch achieves under one
// register allocation: the limiter-by-limiter block counts contemporary
// occupancy calculators report (§II's four factors).
type Occupancy struct {
	WarpsPerBlock   int
	RegsPerWarp     int // rounded allocation (slots = per-thread regs)
	BlocksByThreads int
	BlocksBySlots   int // thread-block slots
	BlocksBySmem    int // -1 when the launch uses no shared memory
	BlocksByRegs    int
	Blocks          int // min of the limits, capped by the grid
	Warps           int
}

// limitedBy names the binding constraint.
func (o Occupancy) LimitedBy() string {
	switch o.Blocks {
	case o.BlocksByRegs:
		return "registers"
	case o.BlocksByThreads:
		return "threads"
	case o.BlocksBySmem:
		return "shared memory"
	case o.BlocksBySlots:
		return "block slots"
	}
	return "grid"
}

// OccupancyFor computes the launch's per-SM occupancy at a given
// per-warp register allocation (pass 0 to use the baseline worst-case
// allocation for the kernel's call graph).
func (g *GPU) OccupancyFor(launch isa.Launch, regsPerWarp int) (Occupancy, error) {
	if _, err := g.Prog.Kernel(launch.Kernel); err != nil {
		return Occupancy{}, err
	}
	an, err := callgraph.Analyze(g.Prog, launch.Kernel)
	if err != nil {
		return Occupancy{}, err
	}
	if regsPerWarp <= 0 {
		regsPerWarp = g.Cfg.roundRegs(an.MaxRegs + g.Cfg.RFCacheWindow)
	}
	cfg := &g.Cfg
	o := Occupancy{
		WarpsPerBlock: launch.Dim.Warps(),
		RegsPerWarp:   regsPerWarp,
	}
	o.BlocksByThreads = cfg.MaxThreadsPerSM / launch.Dim.Block
	o.BlocksBySlots = cfg.MaxBlocksPerSM
	if cfg.UnlimitedBlocks {
		o.BlocksBySlots = 1 << 20
	}
	o.BlocksBySmem = -1
	smem := launch.SharedBytes + g.Prog.SmemSpillPerThread*launch.Dim.Block
	if smem > 0 && !cfg.UnlimitedSmem {
		o.BlocksBySmem = cfg.SharedMemBytes / smem
	}
	regSlots := cfg.RegFileSlots
	if cfg.UnlimitedRegs {
		regSlots = 1 << 30
	}
	o.BlocksByRegs = regSlots / (regsPerWarp * o.WarpsPerBlock)

	o.Blocks = o.BlocksByThreads
	for _, b := range []int{o.BlocksBySlots, o.BlocksByRegs} {
		if b < o.Blocks {
			o.Blocks = b
		}
	}
	if o.BlocksBySmem >= 0 && o.BlocksBySmem < o.Blocks {
		o.Blocks = o.BlocksBySmem
	}
	if launch.Dim.Grid < o.Blocks {
		o.Blocks = launch.Dim.Grid
	}
	o.Warps = o.Blocks * o.WarpsPerBlock
	if o.Warps > cfg.MaxWarpsPerSM {
		o.Warps = cfg.MaxWarpsPerSM
		o.Blocks = o.Warps / o.WarpsPerBlock
		o.Warps = o.Blocks * o.WarpsPerBlock
	}
	return o, nil
}
