package sim_test

import (
	"fmt"
	"math/rand"
	"testing"

	"carsgo/internal/abi"
	"carsgo/internal/cars"
	"carsgo/internal/config"
	"carsgo/internal/isa"
	"carsgo/internal/kir"
	"carsgo/internal/mem"
	"carsgo/internal/sim"
	"carsgo/internal/stats"
)

// randomProgram generates a random but well-formed call tree: a kernel
// calling into a DAG of device functions with random callee-saved
// counts, arithmetic, divergent branches, loops, and (optionally)
// recursion. Every generated function obeys the ABI contract the
// renaming requires: callee-saved registers are written before read.
func randomProgram(rng *rand.Rand, allowRecursion bool) *kir.Module {
	m := &kir.Module{Name: "rand"}
	nFuncs := 2 + rng.Intn(5)

	for i := 0; i < nFuncs; i++ {
		c := 1 + rng.Intn(5)
		b := kir.NewFunc(fmt.Sprintf("rf%d", i)).SetCalleeSaved(c)
		b.Mov(16, 4)
		for k := 1; k < c; k++ {
			b.IAddI(uint8(16+k), uint8(16+k-1), int32(rng.Intn(100)))
		}
		for a := 0; a < rng.Intn(6); a++ {
			switch rng.Intn(4) {
			case 0:
				b.IMad(4, 4, uint8(16+rng.Intn(c)), 16)
			case 1:
				b.Xor(4, 4, uint8(16+rng.Intn(c)))
			case 2:
				b.ShlI(4, 4, int32(rng.Intn(3)))
				b.IAdd(4, 4, 16)
			default:
				b.IAddI(4, 4, int32(rng.Intn(1000)))
			}
		}
		// Divergent branch on a lane-varying value.
		if rng.Intn(2) == 0 {
			b.AndI(2, 4, 1)
			b.SetPI(0, isa.CmpEQ, 2, 0)
			b.If(0, func(bb *kir.Builder) {
				bb.IAddI(4, 4, 17)
			}, func(bb *kir.Builder) {
				bb.XorI(4, 4, 0x55)
			})
		}
		// Call a strictly deeper function (keeps the graph acyclic) or,
		// when allowed, self-recurse with a bounded argument.
		if i+1 < nFuncs && rng.Intn(3) > 0 {
			b.IAddI(4, 4, 1)
			b.Call(fmt.Sprintf("rf%d", i+1+rng.Intn(nFuncs-i-1)))
		}
		if allowRecursion && i == 0 && rng.Intn(2) == 0 {
			// Bounded self-recursion: recurse while (R4 & 7) != 0 on a
			// shrinking counter held in a callee-saved register.
			b.AndI(2, 16, 7)
			b.SetPI(1, isa.CmpNE, 2, 0)
			b.If(1, func(bb *kir.Builder) {
				bb.ShrI(4, 16, 1)
				bb.Call("rf0")
			}, nil)
		}
		b.IAdd(4, 4, uint8(16+c-1))
		b.Ret()
		m.AddFunc(b.MustBuild())
	}

	k := kir.NewKernel("main")
	k.S2R(8, isa.SrTID).
		S2R(9, isa.SrCTAID).
		S2R(10, isa.SrNTID).
		IMad(17, 9, 10, 8).
		ShlI(12, 17, 2).
		IAdd(19, 4, 12).
		MovI(16, 0)
	iters := int32(1 + rng.Intn(3))
	k.ForN(20, 21, iters, func(b *kir.Builder) {
		b.Xor(4, 16, 17)
		b.Call("rf0")
		b.IAdd(16, 16, 4)
	})
	k.StG(19, 0, 16).Exit()
	m.AddFunc(k.MustBuild())
	return m
}

func runProgram(t *testing.T, cfg sim.Config, mode abi.Mode, m *kir.Module, lto bool) []uint32 {
	t.Helper()
	var prog *isa.Program
	var err error
	if lto {
		flat, ierr := abi.InlineAll(m)
		if ierr != nil {
			t.Fatal(ierr)
		}
		prog, err = abi.Link(mode, flat)
	} else {
		prog, err = abi.Link(mode, m)
	}
	if err != nil {
		t.Fatal(err)
	}
	cfg.GlobalMemWords = 1 << 16
	gpu, err := sim.New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	const grid, block = 3, 96
	out := gpu.Alloc(grid * block)
	if _, err := gpu.Run(isa.Launch{
		Kernel: "main",
		Dim:    isa.Dim3{Grid: grid, Block: block},
		Params: []uint32{out},
	}); err != nil {
		t.Fatal(err)
	}
	res := make([]uint32, grid*block)
	copy(res, gpu.Global()[out/4:int(out/4)+grid*block])
	return res
}

// TestSemanticTransparencyRandom is the repo's core invariant: random
// programs compute bit-identical results under the baseline spill/fill
// ABI, CARS renaming at every allocation mechanism (including stacks so
// small that almost every call traps), and full inlining.
func TestSemanticTransparencyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 30; trial++ {
		m := randomProgram(rng, trial%3 == 0)
		ref := runProgram(t, config.V100(), abi.Baseline, m, false)

		check := func(label string, got []uint32) {
			t.Helper()
			for i := range ref {
				if ref[i] != got[i] {
					t.Fatalf("trial %d: %s diverges at out[%d]: %#x vs %#x",
						trial, label, i, ref[i], got[i])
				}
			}
		}
		check("CARS-adaptive", runProgram(t, config.WithCARS(config.V100()), abi.CARS, m, false))
		check("CARS-Low", runProgram(t,
			config.WithCARSPolicy(config.V100(), cars.ForcedPolicy(cars.Level{Kind: cars.KindLow, N: 1})),
			abi.CARS, m, false))
		check("CARS-High", runProgram(t,
			config.WithCARSPolicy(config.V100(), cars.ForcedPolicy(cars.Level{Kind: cars.KindHigh})),
			abi.CARS, m, false))
		check("LTO", runProgram(t, config.V100(), abi.Baseline, m, true))
	}
}

// TestFunctionFreeUnaffected verifies the paper's "without harming
// function-free programs" claim: a kernel with no calls runs the same
// cycle count with CARS enabled as on the baseline.
func TestFunctionFreeUnaffected(t *testing.T) {
	m := &kir.Module{Name: "nofunc"}
	k := kir.NewKernel("main")
	k.S2R(8, isa.SrTID).
		S2R(9, isa.SrCTAID).
		S2R(10, isa.SrNTID).
		IMad(17, 9, 10, 8).
		ShlI(12, 17, 2).
		IAdd(19, 4, 12).
		MovI(16, 0)
	k.ForN(20, 21, 12, func(b *kir.Builder) {
		b.IMad(16, 16, 17, 17)
		b.XorI(16, 16, 0x1234)
	})
	k.StG(19, 0, 16).Exit()
	m.AddFunc(k.MustBuild())

	base, err := abi.Link(abi.Baseline, m)
	if err != nil {
		t.Fatal(err)
	}
	crs, err := abi.Link(abi.CARS, m)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg sim.Config, prog *isa.Program) int64 {
		gpu, err := sim.New(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		out := gpu.Alloc(4 * 256)
		st, err := gpu.Run(isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 4, Block: 256}, Params: []uint32{out}})
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	bc := run(config.V100(), base)
	cc := run(config.WithCARS(config.V100()), crs)
	if bc != cc {
		t.Fatalf("function-free kernel: baseline %d cycles, CARS %d", bc, cc)
	}
}

// TestRegisterWindowsTransparent checks the §VII ablation: fixed-size
// register windows must also preserve program semantics, while wasting
// measurably more stack space than CARS' exact-FRU frames.
func TestRegisterWindowsTransparent(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		m := randomProgram(rng, false)
		ref := runProgram(t, config.V100(), abi.Baseline, m, false)
		win := runProgram(t, config.WithRegisterWindows(config.V100()), abi.CARS, m, false)
		for i := range ref {
			if ref[i] != win[i] {
				t.Fatalf("trial %d: windows diverge at out[%d]", trial, i)
			}
		}
	}
}

func TestRegisterWindowsWasteMoreStack(t *testing.T) {
	// A chain of one fat function and several thin ones: windows size
	// every frame for the fat one, so the same stack holds fewer frames
	// and traps more often than CARS.
	m := &kir.Module{Name: "m"}
	mkChain := func(i, saved int, next string) {
		b := kir.NewFunc(fmt.Sprintf("c%d", i)).SetCalleeSaved(saved)
		b.Mov(16, 4)
		for k := 1; k < saved; k++ {
			b.IAddI(uint8(16+k), uint8(16+k-1), 1)
		}
		if next != "" {
			b.Call(next)
		}
		b.IAdd(4, 4, 16)
		b.Ret()
		m.AddFunc(b.MustBuild())
	}
	mkChain(0, 20, "c1") // fat
	mkChain(1, 2, "c2")  // thin...
	mkChain(2, 2, "c3")
	mkChain(3, 2, "")
	k := kir.NewKernel("main")
	k.S2R(8, isa.SrTID).
		ShlI(12, 8, 2).
		IAdd(19, 4, 12).
		Mov(4, 8)
	k.ForN(20, 21, 6, func(b *kir.Builder) {
		b.Call("c0")
	})
	k.StG(19, 0, 4).Exit()
	m.AddFunc(k.MustBuild())

	prog, err := abi.Link(abi.CARS, m)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg sim.Config) uint64 {
		// Pin the Low-watermark point so both mechanisms get the same
		// stack and the waste shows as extra trap traffic.
		cfg.CARSPolicy = cars.ForcedPolicy(cars.Level{Kind: cars.KindNxLow, N: 2})
		gpu, err := sim.New(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		out := gpu.Alloc(256)
		st, err := gpu.Run(isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 2, Block: 128}, Params: []uint32{out}})
		if err != nil {
			t.Fatal(err)
		}
		return st.TrapSpillSlots + st.TrapFillSlots
	}
	carsTraffic := run(config.WithCARS(config.V100()))
	winTraffic := run(config.WithRegisterWindows(config.V100()))
	if winTraffic <= carsTraffic {
		t.Errorf("windows trap traffic %d not above CARS %d (waste invisible)",
			winTraffic, carsTraffic)
	}
}

// TestSharedSpillTransparent checks the CRAT-like comparator: spilling
// callee-saved registers to shared memory must preserve semantics, must
// produce zero L1D spill traffic, and must charge shared memory.
func TestSharedSpillTransparent(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 10; trial++ {
		m := randomProgram(rng, false)
		ref := runProgram(t, config.V100(), abi.Baseline, m, false)
		cfg := config.WithSharedSpill(config.V100())
		got := runProgram(t, cfg, abi.SharedSpill, m, false)
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("trial %d: shared-spill diverges at out[%d]", trial, i)
			}
		}
	}
}

func TestSharedSpillNoL1Traffic(t *testing.T) {
	m := randomProgram(rand.New(rand.NewSource(9)), false)
	prog, err := abi.Link(abi.SharedSpill, m)
	if err != nil {
		t.Fatal(err)
	}
	if prog.SmemSpillPerThread == 0 {
		t.Fatal("no spill frame computed")
	}
	cfg := config.WithSharedSpill(config.V100())
	cfg.GlobalMemWords = 1 << 16
	gpu, err := sim.New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	out := gpu.Alloc(3 * 96)
	st, err := gpu.Run(isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 3, Block: 96}, Params: []uint32{out}})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.L1D.Accesses[mem.ClassLocalSpill]; got != 0 {
		t.Errorf("shared-spill ABI produced %d L1D spill sectors", got)
	}
	if st.Instructions[stats.CatSpillFill] == 0 {
		t.Error("no spill instructions recorded")
	}
	if st.Instructions[stats.CatShared] != 0 {
		// Spill-marked shared ops must be classified as spills, not
		// ordinary shared traffic (the program has no explicit LdS/StS).
		t.Errorf("spill shared-ops leaked into the shared category")
	}
}

func TestSharedSpillRejectsRecursion(t *testing.T) {
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("main")
	k.MovI(4, 3).Call("rec").Exit()
	m.AddFunc(k.MustBuild())
	rec := kir.NewFunc("rec").SetCalleeSaved(1)
	rec.Mov(16, 4).Call("rec").Ret()
	m.AddFunc(rec.MustBuild())
	if _, err := abi.Link(abi.SharedSpill, m); err == nil {
		t.Fatal("recursive program linked under the shared-spill ABI")
	}
}
