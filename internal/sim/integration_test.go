package sim_test

import (
	"errors"
	"testing"

	"carsgo/internal/abi"
	"carsgo/internal/config"
	"carsgo/internal/isa"
	"carsgo/internal/kir"
	"carsgo/internal/mem"
	"carsgo/internal/sim"
)

// barrierModule: each thread stores tid+1 to shared memory, barriers,
// then reads its neighbour's slot — wrong answers appear if the barrier
// does not actually separate the phases.
func barrierModule(block int) *kir.Module {
	m := &kir.Module{Name: "bar"}
	k := kir.NewKernel("main")
	k.S2R(8, isa.SrTID).
		S2R(9, isa.SrCTAID).
		S2R(10, isa.SrNTID).
		IMad(17, 9, 10, 8).
		ShlI(12, 17, 2).
		IAdd(19, 4, 12).
		// shared[tid] = tid + 1
		ShlI(13, 8, 2).
		IAddI(14, 8, 1).
		StS(13, 0, 14).
		Bar().
		// read neighbour (tid+1) mod block
		IAddI(15, 8, 1).
		SetPI(0, isa.CmpGE, 15, int32(block)).
		If(0, func(b *kir.Builder) { b.MovI(15, 0) }, nil).
		ShlI(15, 15, 2).
		LdS(16, 15, 0).
		StG(19, 0, 16).
		Exit()
	m.AddFunc(k.MustBuild())
	return m
}

func TestBarrierSynchronises(t *testing.T) {
	const grid, block = 6, 128
	prog, err := abi.Link(abi.Baseline, barrierModule(block))
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := sim.New(config.V100(), prog)
	if err != nil {
		t.Fatal(err)
	}
	out := gpu.Alloc(grid * block)
	if _, err := gpu.Run(isa.Launch{
		Kernel: "main", Dim: isa.Dim3{Grid: grid, Block: block},
		SharedBytes: block * 4, Params: []uint32{out},
	}); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < grid; g++ {
		for tid := 0; tid < block; tid++ {
			want := uint32((tid+1)%block) + 1
			got := gpu.Global()[int(out/4)+g*block+tid]
			if got != want {
				t.Fatalf("block %d tid %d: got %d, want %d", g, tid, got, want)
			}
		}
	}
}

func TestSWLLimitsConcurrency(t *testing.T) {
	w := barrierModule(64)
	prog, err := abi.Link(abi.Baseline, w)
	if err != nil {
		t.Fatal(err)
	}
	run := func(limit int) int64 {
		cfg := config.V100()
		cfg.SWLLimit = limit
		gpu, err := sim.New(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		out := gpu.Alloc(64 * 64)
		st, err := gpu.Run(isa.Launch{
			Kernel: "main", Dim: isa.Dim3{Grid: 64, Block: 64},
			SharedBytes: 64 * 4, Params: []uint32{out},
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	limited := run(1)
	free := run(0)
	if limited <= free {
		t.Errorf("SWL(1) %d cycles not slower than unlimited %d", limited, free)
	}
}

// ctxSwitchModule engineers the §IV-B case: a block whose High-watermark
// register demand exceeds the SM register file, with barriers, so CARS
// must context switch to make progress.
func ctxSwitchModule() *kir.Module {
	m := &kir.Module{Name: "ctx"}
	f := kir.NewFunc("bigframe").SetCalleeSaved(100)
	f.Mov(16, 4)
	for k := 1; k < 100; k++ {
		f.IAddI(uint8(16+k), uint8(16+k-1), 1)
	}
	f.IAdd(4, 4, 115).Ret()
	m.AddFunc(f.MustBuild())

	k := kir.NewKernel("main")
	k.S2R(8, isa.SrTID).
		S2R(9, isa.SrCTAID).
		S2R(10, isa.SrNTID).
		IMad(17, 9, 10, 8).
		ShlI(12, 17, 2).
		IAdd(19, 4, 12).
		MovI(16, 0)
	// Inflate the kernel base so High cannot host every warp.
	for r := 0; r < 80; r++ {
		k.IAddI(uint8(30+r), 17, int32(r))
	}
	k.ForN(20, 21, 3, func(b *kir.Builder) {
		b.Mov(4, 17)
		b.Call("bigframe")
		b.IAdd(16, 16, 4)
		b.Bar()
	})
	k.StG(19, 0, 16).Exit()
	m.AddFunc(k.MustBuild())
	return m
}

func TestContextSwitchPath(t *testing.T) {
	prog, err := abi.Link(abi.CARS, ctxSwitchModule())
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.WithCARS(config.V100())
	gpu, err := sim.New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	const grid, block = 8, 512
	out := gpu.Alloc(grid * block)
	st, err := gpu.Run(isa.Launch{
		Kernel: "main", Dim: isa.Dim3{Grid: grid, Block: block},
		Params: []uint32{out},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ContextSwitches == 0 {
		t.Error("engineered kernel performed no context switches")
	}
	// Functional correctness through the switch path: compare against
	// the baseline ABI.
	bprog, err := abi.Link(abi.Baseline, ctxSwitchModule())
	if err != nil {
		t.Fatal(err)
	}
	bgpu, err := sim.New(config.V100(), bprog)
	if err != nil {
		t.Fatal(err)
	}
	bout := bgpu.Alloc(grid * block)
	if _, err := bgpu.Run(isa.Launch{
		Kernel: "main", Dim: isa.Dim3{Grid: grid, Block: block},
		Params: []uint32{bout},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < grid*block; i++ {
		if gpu.Global()[int(out/4)+i] != bgpu.Global()[int(bout/4)+i] {
			t.Fatalf("context-switched output differs at %d", i)
		}
	}
}

// TestDivergentIndirectError pins down the documented limitation:
// lane-divergent indirect targets are rejected loudly — as a
// structured ExecError naming the kernel, warp, and PC — not silently
// serialised.
func TestDivergentIndirectError(t *testing.T) {
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("main")
	// Target index = laneid & 1: divergent within the warp.
	k.S2R(8, isa.SrLaneID).
		AndI(8, 8, 1).
		MovFuncIdx(9, "va").
		IAdd(9, 9, 8). // va and vb are adjacent in link order
		CallIndirect(9, "va", "vb").
		Exit()
	m.AddFunc(k.MustBuild())
	va := kir.NewFunc("va")
	va.IAddI(4, 4, 1).Ret()
	m.AddFunc(va.MustBuild())
	vb := kir.NewFunc("vb")
	vb.IAddI(4, 4, 2).Ret()
	m.AddFunc(vb.MustBuild())

	prog, err := abi.Link(abi.Baseline, m)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := sim.New(config.V100(), prog)
	if err != nil {
		t.Fatal(err)
	}
	_, err = gpu.Run(isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 1, Block: 32}})
	if err == nil {
		t.Fatal("divergent indirect call did not error")
	}
	var ee *sim.ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("divergent indirect call returned %T (%v), want *sim.ExecError", err, err)
	}
	if ee.Kernel != "main" {
		t.Errorf("ExecError.Kernel = %q, want main", ee.Kernel)
	}
	if ee.Func != "main" || ee.PC < 0 {
		t.Errorf("ExecError does not locate the fault: func %q pc %d", ee.Func, ee.PC)
	}
}

// TestInvalidIndirectTargetError checks the other indirect-call fault:
// a run-time function index outside the program.
func TestInvalidIndirectTargetError(t *testing.T) {
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("main")
	k.MovI(9, 1000). // far beyond the linked function count
				CallIndirect(9, "va").
				Exit()
	m.AddFunc(k.MustBuild())
	va := kir.NewFunc("va")
	va.IAddI(4, 4, 1).Ret()
	m.AddFunc(va.MustBuild())

	prog, err := abi.Link(abi.Baseline, m)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := sim.New(config.V100(), prog)
	if err != nil {
		t.Fatal(err)
	}
	_, err = gpu.Run(isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 1, Block: 32}})
	var ee *sim.ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("invalid indirect target returned %T (%v), want *sim.ExecError", err, err)
	}
	if ee.Kernel != "main" || ee.Warp != 0 {
		t.Errorf("ExecError = %+v, want kernel main warp 0", ee)
	}
}

func TestUnlimitedRegsLiftOccupancy(t *testing.T) {
	// A register-hungry kernel fits more blocks under IdealVW.
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("main")
	k.S2R(8, isa.SrTID)
	for r := 0; r < 200; r++ {
		k.IAddI(uint8(10+r), 8, int32(r))
	}
	k.ForN(4, 5, 50, func(b *kir.Builder) {
		b.IMad(210, 210, 8, 8)
	})
	k.Exit()
	m.AddFunc(k.MustBuild())
	prog, err := abi.Link(abi.Baseline, m)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg sim.Config) int64 {
		gpu, err := sim.New(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		st, err := gpu.Run(isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 128, Block: 256}})
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	base := run(config.V100())
	ideal := run(config.IdealizedVirtualWarps(config.V100()))
	if ideal >= base {
		t.Errorf("IdealVW (%d cycles) not faster than reg-limited baseline (%d)", ideal, base)
	}
}

func TestSpillTrafficClassification(t *testing.T) {
	// Explicit (non-ABI) local traffic lands in ClassLocalOther.
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("main")
	k.SetExtraLocalBytes(8)
	k.S2R(8, isa.SrTID).
		StL(1, 0, 8).
		LdL(9, 1, 0).
		Exit()
	m.AddFunc(k.MustBuild())
	prog, err := abi.Link(abi.Baseline, m)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := sim.New(config.V100(), prog)
	if err != nil {
		t.Fatal(err)
	}
	st, err := gpu.Run(isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 2, Block: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if st.L1D.Accesses[mem.ClassLocalOther] == 0 {
		t.Error("explicit locals not classified as other-local")
	}
	if st.L1D.Accesses[mem.ClassLocalSpill] != 0 {
		t.Error("explicit locals misclassified as spills")
	}
}
