package sim

import "fmt"

// CancelError is the structured error RunContext returns when a
// launch's context is cancelled or its deadline expires mid-
// simulation: it records how far the launch got so callers (the carsd
// daemon, the -timeout CLI flags) can report a meaningful partial
// state instead of a bare context error. Unwrap exposes the
// underlying context error for errors.Is(ctx.Err()) checks.
type CancelError struct {
	Kernel      string // launched kernel name
	Cycles      int64  // simulated cycles completed before the cut
	BlocksDone  int
	TotalBlocks int
	Err         error // context.Canceled or context.DeadlineExceeded
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("sim: kernel %q cancelled after %d cycles (%d/%d blocks done): %v",
		e.Kernel, e.Cycles, e.BlocksDone, e.TotalBlocks, e.Err)
}

func (e *CancelError) Unwrap() error { return e.Err }

// ExecError is a structured functional-execution fault: a condition
// the program's own code caused (divergent indirect target, invalid
// function index, register-stack misuse) rather than a simulator bug.
// It names the launch, the SM and warp that faulted, and the faulting
// instruction so callers can report or triage without a stack trace.
// GPU.Run returns it as its error value.
type ExecError struct {
	Kernel string // launched kernel name
	SM     int    // SM the warp was resident on
	Warp   int    // global warp id within the launch
	Func   string // function containing the faulting instruction
	PC     int    // instruction index within Func
	Msg    string
}

func (e *ExecError) Error() string {
	return fmt.Sprintf("sim: kernel %q: warp %d on SM %d at %s[%d]: %s",
		e.Kernel, e.Warp, e.SM, e.Func, e.PC, e.Msg)
}

// execFault aborts the current launch with an ExecError carrying the
// warp's current function and PC. The fault unwinds the simulation
// loop as a panic and is recovered into GPU.Run's error return — the
// functional core stays free of error plumbing on its hot paths.
func (s *SM) execFault(w *Warp, format string, args ...any) {
	e := &ExecError{SM: s.id, Msg: fmt.Sprintf(format, args...)}
	if s.gpu.launch != nil {
		e.Kernel = s.gpu.launch.Kernel
	}
	if w != nil {
		e.Warp = w.GWID
		if !w.SIMT.Empty() {
			top := w.SIMT.Top()
			e.PC = top.PC
			if top.Func >= 0 && top.Func < len(s.gpu.Prog.Funcs) {
				e.Func = s.gpu.Prog.Funcs[top.Func].Name
			}
		}
	}
	panic(e)
}
