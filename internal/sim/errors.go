package sim

import "fmt"

// ExecError is a structured functional-execution fault: a condition
// the program's own code caused (divergent indirect target, invalid
// function index, register-stack misuse) rather than a simulator bug.
// It names the launch, the SM and warp that faulted, and the faulting
// instruction so callers can report or triage without a stack trace.
// GPU.Run returns it as its error value.
type ExecError struct {
	Kernel string // launched kernel name
	SM     int    // SM the warp was resident on
	Warp   int    // global warp id within the launch
	Func   string // function containing the faulting instruction
	PC     int    // instruction index within Func
	Msg    string
}

func (e *ExecError) Error() string {
	return fmt.Sprintf("sim: kernel %q: warp %d on SM %d at %s[%d]: %s",
		e.Kernel, e.Warp, e.SM, e.Func, e.PC, e.Msg)
}

// execFault aborts the current launch with an ExecError carrying the
// warp's current function and PC. The fault unwinds the simulation
// loop as a panic and is recovered into GPU.Run's error return — the
// functional core stays free of error plumbing on its hot paths.
func (s *SM) execFault(w *Warp, format string, args ...any) {
	e := &ExecError{SM: s.id, Msg: fmt.Sprintf(format, args...)}
	if s.gpu.launch != nil {
		e.Kernel = s.gpu.launch.Kernel
	}
	if w != nil {
		e.Warp = w.GWID
		if !w.SIMT.Empty() {
			top := w.SIMT.Top()
			e.PC = top.PC
			if top.Func >= 0 && top.Func < len(s.gpu.Prog.Funcs) {
				e.Func = s.gpu.Prog.Funcs[top.Func].Name
			}
		}
	}
	panic(e)
}
