package sim

import "carsgo/internal/isa"

// RegVals resolves an architectural register to its current physical
// lane values through the warp's rename mapping. Monitors must copy
// the array if they keep it: the arena is live simulator state.
type RegVals func(r uint8) *[isa.WarpSize]uint32

// Monitor observes the architectural side-effects of execution:
// register reads and writes (with their active lane masks), CARS
// rename traffic (calls, returns, PUSH/POP with the resulting
// RFP/RSP), baseline/shared spill stores and fills, and circular-
// stack trap spills. The shadow sanitizer (internal/san) implements
// it to maintain an independent model of the machine and cross-check
// every transition; the interface lives here so the simulator does
// not import its own checkers.
//
// All hooks are warp-granular and run synchronously on the simulator
// goroutine during the functional execution of the instruction:
//
//   - RegRead fires before the instruction's effects, once per source
//     operand actually consumed (spill-store data operands are
//     exempt, matching vet's read-before-def analysis; SEL reports
//     its two sources under the per-lane masks that select them).
//   - RegWrite fires after the destination holds its new value.
//   - CallBegin fires before the register stack renames, so regs
//     still resolves through the caller's window; CallEnd fires after
//     with the new architectural RFP/RSP.
//   - Return fires only when the SIMT stack releases the frame (all
//     divergent paths rejoined), after the architectural rename
//     rewinds.
//   - StackPush/StackPop fire after the PUSH/POP micro-op commits.
//   - SpillStore/SpillFill fire for spill-flagged local/shared
//     accesses with the transferred lane values.
//   - TrapSlot fires once per register-stack slot the circular-stack
//     trap moves between the rename arena and local memory.
//   - SharedAccess fires before a shared-memory load or store commits,
//     with the per-lane byte addresses (before the immediate offset is
//     applied) and whether the access is ABI spill traffic.
//   - SharedTxn fires after a shared-memory access commits, with the
//     number of bank-serialised transactions it cost (0 for a fully
//     predicated-off access) and whether the RF-cache window absorbed
//     it (absorbed accesses cost no transactions).
//   - Barrier fires when a warp arrives at BAR.SYNC, with its current
//     active mask; BarrierRelease fires once when the whole block's
//     barrier opens (including the degenerate release on warp exit).
//   - LocalAccess fires for every architectural local load/store
//     (LDL/STL) a warp executes, spill-flagged or not. Trap-injected
//     spill traffic is NOT reported here — it flows through TrapSlot —
//     so the counts line up with vet's instruction-level cost bounds.
//   - BlockAdmit fires at the end of a successful block admission with
//     the admitted level index, the per-warp register allocation, the
//     block's warp count, and the SM's unfinished resident warps after
//     the admission (the dynamic side of vet's occupancy model).
//   - WarpExit fires when a warp's last thread exits, before the
//     warp's registers are released and before any resulting block
//     retirement.
//   - BlockRetire fires when a block completes and releases its
//     resources.
type Monitor interface {
	WarpStart(gwid, blockID, wInBlock, fn, stackSlots int, active uint32)
	RegRead(gwid, fn, pc int, op isa.Op, r uint8, lanes uint32)
	RegWrite(gwid, fn, pc int, r uint8, lanes uint32)
	CallBegin(gwid, fn, pc, callee, fru int, regs RegVals)
	CallEnd(gwid, rfp, rsp int)
	Return(gwid, fn, pc, rfp, rsp int, regs RegVals)
	StackPush(gwid, fn, pc, n, rfp, rsp int)
	StackPop(gwid, fn, pc, n, rfp, rsp int)
	SpillStore(gwid, fn, pc int, r uint8, off int32, lanes uint32, vals *[isa.WarpSize]uint32)
	SpillFill(gwid, fn, pc int, r uint8, off int32, lanes uint32, vals *[isa.WarpSize]uint32)
	TrapSlot(gwid int, fill bool, abs int, vals *[isa.WarpSize]uint32)
	SharedAccess(gwid, blockID, fn, pc int, store, spill bool, lanes uint32, addrs *[isa.WarpSize]uint32, imm int32)
	SharedTxn(gwid, blockID int, store, spill bool, txns int, absorbed bool)
	Barrier(gwid, blockID, fn, pc int, active uint32)
	BarrierRelease(blockID int)
	LocalAccess(gwid, fn, pc int, store, spill bool, lanes uint32)
	BlockAdmit(sm, blockID, levelIdx, regsPerWarp, warps, resident int)
	WarpExit(gwid int)
	BlockRetire(sm, blockID int)
}

// monReads reports the instruction's register uses to the monitor
// before execution, mirroring the read-before-def exemptions in
// internal/vet: a spill store's data operand saves a possibly-
// uninitialized callee-saved register by design, and SEL consumes
// each source only on the lanes its predicate selects.
func (s *SM) monReads(mon Monitor, w *Warp, in *isa.Instruction, fn, pc int, guard uint32) {
	switch in.Op {
	case isa.OpSel:
		sel := w.Preds[in.Pred]
		if in.PNeg {
			sel = ^sel
		}
		mon.RegRead(w.GWID, fn, pc, in.Op, in.SrcA, guard&sel)
		mon.RegRead(w.GWID, fn, pc, in.Op, in.SrcB, guard&^sel)
		return
	case isa.OpPush, isa.OpPop, isa.OpPushRFP:
		return
	}
	var buf [3]uint8
	for _, r := range in.Reads(buf[:0]) {
		if in.Spill && in.Op.IsStore() && r == in.SrcC {
			continue
		}
		mon.RegRead(w.GWID, fn, pc, in.Op, r, guard)
	}
}
