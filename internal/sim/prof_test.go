package sim_test

import (
	"testing"

	"carsgo/internal/abi"
	"carsgo/internal/config"
	"carsgo/internal/isa"
	"carsgo/internal/sim"
	"carsgo/internal/workloads"
)

func BenchmarkSimMST(b *testing.B) {
	w, _ := workloads.ByName("MST")
	prog, err := abi.Link(abi.Baseline, w.Modules()...)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		gpu, _ := sim.New(config.V100(), prog)
		launches, _ := w.Setup(gpu)
		var cycles int64
		var instr uint64
		for _, l := range launches {
			st, err := gpu.Run(l)
			if err != nil {
				b.Fatal(err)
			}
			cycles += st.Cycles
			instr += st.TotalInstructions()
		}
		b.ReportMetric(float64(cycles), "cycles")
		b.ReportMetric(float64(instr), "warp-instrs")
	}
	_ = isa.WarpSize
}
