package sim

import (
	"testing"

	"carsgo/internal/isa"
)

func TestRangeAllocFirstFitAndCoalesce(t *testing.T) {
	a := newRangeAlloc(100)
	b1, ok := a.Alloc(40)
	if !ok || b1 != 0 {
		t.Fatalf("first alloc: %d %v", b1, ok)
	}
	b2, ok := a.Alloc(40)
	if !ok || b2 != 40 {
		t.Fatalf("second alloc: %d %v", b2, ok)
	}
	if _, ok := a.Alloc(40); ok {
		t.Fatal("over-allocation succeeded")
	}
	if got := a.FreeSlots(); got != 20 {
		t.Fatalf("free = %d", got)
	}
	a.Release(b1, 40)
	if got := a.LargestFree(); got != 40 {
		t.Fatalf("largest = %d (no coalesce needed yet)", got)
	}
	a.Release(b2, 40)
	if got := a.LargestFree(); got != 100 {
		t.Fatalf("coalesce failed: largest = %d", got)
	}
	// Fragmented middle hole.
	x, _ := a.Alloc(30)
	y, _ := a.Alloc(30)
	z, _ := a.Alloc(30)
	a.Release(y, 30)
	if got := a.LargestFree(); got != 30 {
		t.Fatalf("middle hole largest = %d", got)
	}
	a.Release(x, 30)
	if got := a.LargestFree(); got != 60 {
		t.Fatalf("left+middle coalesce = %d", got)
	}
	a.Release(z, 30)
	if a.FreeSlots() != 100 || a.LargestFree() != 100 {
		t.Fatal("full release did not restore capacity")
	}
}

func TestRangeAllocZeroSize(t *testing.T) {
	a := newRangeAlloc(10)
	if _, ok := a.Alloc(0); !ok {
		t.Fatal("zero alloc should trivially succeed")
	}
	a.Release(0, 0) // must not corrupt the free list
	if a.FreeSlots() != 10 {
		t.Fatal("zero release changed capacity")
	}
}

func TestBlockTailMask(t *testing.T) {
	cases := []struct {
		threads, warp int
		want          uint32
	}{
		{64, 0, ^uint32(0)},
		{64, 1, ^uint32(0)},
		{48, 1, 0x0000FFFF},
		{33, 1, 0x00000001},
		{32, 1, 0},
		{1, 0, 1},
	}
	for _, c := range cases {
		if got := blockTailMask(c.threads, c.warp); got != c.want {
			t.Errorf("blockTailMask(%d,%d) = %#x, want %#x", c.threads, c.warp, got, c.want)
		}
	}
}

func TestCoalesceMergesSectors(t *testing.T) {
	var accs []access
	// Two addresses in the same sector, two in other sectors, one in a
	// different line.
	accs = coalesce(accs, 0, 128, 32)
	accs = coalesce(accs, 4, 128, 32)
	accs = coalesce(accs, 40, 128, 32)
	accs = coalesce(accs, 127, 128, 32)
	accs = coalesce(accs, 200, 128, 32)
	if len(accs) != 2 {
		t.Fatalf("lines = %d, want 2", len(accs))
	}
	if accs[0].sectors != 0b1011 {
		t.Fatalf("line 0 sectors = %04b", accs[0].sectors)
	}
	if accs[1].lineAddr != 128 || accs[1].sectors != 0b0100 {
		t.Fatalf("line 1: %+v", accs[1])
	}
}

func TestEvalALU(t *testing.T) {
	cases := []struct {
		op      isa.Op
		a, b, c uint32
		want    uint32
	}{
		{isa.OpIAdd, 3, 4, 0, 7},
		{isa.OpISub, 3, 4, 0, 0xFFFFFFFF},
		{isa.OpIMul, 3, 4, 0, 12},
		{isa.OpIMad, 3, 4, 5, 17},
		{isa.OpIMin, ^uint32(0), 1, 0, ^uint32(0)}, // signed: -1 < 1
		{isa.OpIMax, ^uint32(0), 1, 0, 1},
		{isa.OpAnd, 0b1100, 0b1010, 0, 0b1000},
		{isa.OpOr, 0b1100, 0b1010, 0, 0b1110},
		{isa.OpXor, 0b1100, 0b1010, 0, 0b0110},
		{isa.OpShl, 1, 4, 0, 16},
		{isa.OpShr, 0x80000000, 31, 0, 1},
		{isa.OpMov, 9, 0, 0, 9},
	}
	for _, cse := range cases {
		got, ok := evalALU(cse.op, cse.a, cse.b, cse.c, cse.b)
		if !ok || got != cse.want {
			t.Errorf("%s(%d,%d,%d) = %d,%v, want %d", cse.op, cse.a, cse.b, cse.c, got, ok, cse.want)
		}
	}
	// Float ops round-trip through bit casts.
	if got, _ := evalALU(isa.OpFAdd, f2u(1.5), f2u(2.25), 0, 0); u2f(got) != 3.75 {
		t.Errorf("FADD = %v", u2f(got))
	}
	if got, _ := evalALU(isa.OpFFma, f2u(2), f2u(3), f2u(1), 0); u2f(got) != 7 {
		t.Errorf("FFMA = %v", u2f(got))
	}
	if got, _ := evalALU(isa.OpFSqr, f2u(9), 0, 0, 0); u2f(got) != 3 {
		t.Errorf("FSQRT = %v", u2f(got))
	}
	// Ops without an evaluation rule report failure instead of panicking.
	if _, ok := evalALU(isa.OpBra, 0, 0, 0, 0); ok {
		t.Error("evalALU(OpBra) reported ok")
	}
}
