package sim

import "sort"

// rangeAlloc is a first-fit free-list allocator over the SM register
// arena. Warps receive contiguous slot ranges when their block is
// scheduled (§III-A: the base+offset indexing needs contiguity) and the
// ranges return when the block — or a context-switched warp — releases
// them. Adjacent free ranges coalesce.
type rangeAlloc struct {
	capacity int
	free     []span // sorted by base
}

type span struct{ base, size int }

func newRangeAlloc(capacity int) *rangeAlloc {
	return &rangeAlloc{capacity: capacity, free: []span{{0, capacity}}}
}

// FreeSlots returns the total free capacity.
func (a *rangeAlloc) FreeSlots() int {
	t := 0
	for _, s := range a.free {
		t += s.size
	}
	return t
}

// LargestFree returns the largest single free range.
func (a *rangeAlloc) LargestFree() int {
	m := 0
	for _, s := range a.free {
		if s.size > m {
			m = s.size
		}
	}
	return m
}

// Alloc carves size slots, returning the base index, or ok=false.
func (a *rangeAlloc) Alloc(size int) (base int, ok bool) {
	if size <= 0 {
		return 0, true
	}
	for i := range a.free {
		if a.free[i].size >= size {
			base = a.free[i].base
			a.free[i].base += size
			a.free[i].size -= size
			if a.free[i].size == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			return base, true
		}
	}
	return 0, false
}

// Release returns a range to the pool, coalescing neighbours.
func (a *rangeAlloc) Release(base, size int) {
	if size <= 0 {
		return
	}
	a.free = append(a.free, span{base, size})
	sort.Slice(a.free, func(i, j int) bool { return a.free[i].base < a.free[j].base })
	out := a.free[:1]
	for _, s := range a.free[1:] {
		last := &out[len(out)-1]
		if last.base+last.size == s.base {
			last.size += s.size
		} else {
			out = append(out, s)
		}
	}
	a.free = out
}
