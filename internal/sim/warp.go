package sim

import (
	"carsgo/internal/cars"
	"carsgo/internal/isa"
	"carsgo/internal/simt"
)

// farFuture marks registers with in-flight loads.
const farFuture = int64(1) << 60

// localPageWords is the granularity of lazy local-memory allocation.
const localPageWords = 64

type localPage [localPageWords][isa.WarpSize]uint32

// Block is one resident thread block (CTA) on an SM.
type Block struct {
	ID         int // global block index within the grid
	Warps      []*Warp
	StartCycle int64

	// Barrier state: warps arrived at the current barrier.
	BarrierArrived int

	// LiveWarps counts warps that have not exited.
	LiveWarps int

	// Shared-memory functional storage and allocation size.
	Shared     []uint32
	SmemBytes  int
	ThreadsCnt int

	// CARS level this block was launched at (ladder index).
	LevelIdx    int
	RegsPerWarp int // rounded slots per warp
}

// Warp is one resident warp's complete state.
type Warp struct {
	SM       *SM
	Slot     int // warp slot within the SM
	Block    *Block
	WInBlock int
	GWID     int // grid-global warp id (stable local-memory addressing)

	SIMT simt.Stack

	// Register allocation: base index and slot count in the SM register
	// arena. hasRegs is false for CARS-deactivated (stalled-list) warps
	// and context-switched-out warps.
	RegBase  int
	RegCount int
	HasRegs  bool

	// KernelBase is the architectural register count backed by the base
	// allocation; slots beyond it form the CARS register stack.
	KernelBase int

	// CStack is the CARS per-warp register stack (RFP/RSP/frames).
	CStack cars.Stack

	// Preds holds the 8 predicate registers as lane masks.
	Preds [8]uint32

	// Scoreboard: cycle at which each architectural register (and
	// predicate) becomes readable.
	ReadyAt     [isa.MaxArchRegs]int64
	PredReadyAt [8]int64

	// Wake gates issue: icache misses, traps, and issue pacing push it
	// into the future.
	Wake int64

	AtBarrier  bool
	Finished   bool
	SwappedOut bool // context-switched out (register state in memory)
	SWLActive  bool // under the static wavefront limiter

	// TrapOutstanding counts in-flight trap-injected memory operations;
	// the warp cannot issue until they drain.
	TrapOutstanding int
	trapMaxDone     int64

	// Instruction buffer: the (func,pc) already fetched into the warp's
	// front-end, so stalled re-scans skip the instruction cache.
	IBufFunc int
	IBufPC   int

	// Local is the functional per-thread local memory, lazily paged.
	Local map[int]*localPage

	// DynCallDepth tracks the current dynamic call depth for stats.
	DynCallDepth int
}

// reg returns the warp-wide value vector of architectural register r,
// applying CARS renaming when the register stack is active (§III-A):
// for r = 16+k with k < RSP−RFP, the physical slot is RFP+k within the
// stack region (modulo the stack size, Fig. 6's circular stack).
func (w *Warp) reg(r uint8) *[isa.WarpSize]uint32 {
	x := int(r)
	if x >= isa.FirstCalleeSaved && w.CStack.Slots > 0 {
		if k := x - isa.FirstCalleeSaved; k < w.CStack.RenameLen() {
			return &w.SM.regArena[w.RegBase+w.KernelBase+w.CStack.SlotFor(k)]
		}
	}
	return &w.SM.regArena[w.RegBase+x]
}

// slotIndex returns the physical arena slot an architectural register
// resolves to (the same mapping reg uses), for bank accounting.
func (w *Warp) slotIndex(r uint8) int {
	x := int(r)
	if x >= isa.FirstCalleeSaved && w.CStack.Slots > 0 {
		if k := x - isa.FirstCalleeSaved; k < w.CStack.RenameLen() {
			return w.RegBase + w.KernelBase + w.CStack.SlotFor(k)
		}
	}
	return w.RegBase + x
}

// stackSlot returns the storage of a physical register-stack slot.
func (w *Warp) stackSlot(phys int) *[isa.WarpSize]uint32 {
	return &w.SM.regArena[w.RegBase+w.KernelBase+phys]
}

// predMask evaluates the instruction's guard predicate over all lanes.
func (w *Warp) predMask(in *isa.Instruction) uint32 {
	if in.Pred == isa.NoPred {
		return simt.FullMask
	}
	m := w.Preds[in.Pred]
	if in.PNeg {
		m = ^m
	}
	return m
}

// localWord reads/writes functional local memory for one lane.
func (w *Warp) localWord(wordIdx int, lane int) *uint32 {
	pageIdx := wordIdx / localPageWords
	pg, ok := w.Local[pageIdx]
	if !ok {
		pg = &localPage{}
		w.Local[pageIdx] = pg
	}
	return &pg[wordIdx%localPageWords][lane]
}

// regsReady reports whether the scoreboard permits reading/writing the
// instruction's registers at cycle now; when blocked it also returns
// the cycle at which the hazard clears (for idle skipping).
func (w *Warp) regsReady(now int64, in *isa.Instruction) (bool, int64) {
	at := int64(0)
	if in.SrcA != isa.NoReg && w.ReadyAt[in.SrcA] > at {
		at = w.ReadyAt[in.SrcA]
	}
	if in.SrcB != isa.NoReg && w.ReadyAt[in.SrcB] > at {
		at = w.ReadyAt[in.SrcB]
	}
	if in.SrcC != isa.NoReg && w.ReadyAt[in.SrcC] > at {
		at = w.ReadyAt[in.SrcC]
	}
	if in.Dst != isa.NoReg && w.ReadyAt[in.Dst] > at {
		at = w.ReadyAt[in.Dst]
	}
	if in.Pred != isa.NoPred && w.PredReadyAt[in.Pred] > at {
		at = w.PredReadyAt[in.Pred]
	}
	if in.Op == isa.OpSetP && w.PredReadyAt[in.PDst] > at {
		at = w.PredReadyAt[in.PDst]
	}
	return at <= now, at
}
