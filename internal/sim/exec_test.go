package sim_test

import (
	"math"
	"testing"

	"carsgo/internal/abi"
	"carsgo/internal/config"
	"carsgo/internal/isa"
	"carsgo/internal/kir"
	"carsgo/internal/sim"
)

// runLanes executes a kernel over one warp and returns the per-lane
// values stored to out[lane].
func runLanes(t *testing.T, build func(k *kir.Builder)) []uint32 {
	t.Helper()
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("main")
	k.S2R(8, isa.SrLaneID).
		ShlI(12, 8, 2).
		IAdd(19, 4, 12)
	build(k)
	k.StG(19, 0, 9).Exit()
	m.AddFunc(k.MustBuild())
	prog, err := abi.Link(abi.Baseline, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.V100()
	cfg.GlobalMemWords = 1 << 12
	gpu, err := sim.New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	out := gpu.Alloc(32)
	if _, err := gpu.Run(isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 1, Block: 32}, Params: []uint32{out}}); err != nil {
		t.Fatal(err)
	}
	res := make([]uint32, 32)
	copy(res, gpu.Global()[out/4:out/4+32])
	return res
}

func TestPredicatedALUMasksLanes(t *testing.T) {
	got := runLanes(t, func(k *kir.Builder) {
		k.MovI(9, 100)
		k.SetPI(0, isa.CmpLT, 8, 16) // lanes 0..15
		// Only predicated lanes update R9.
		k.If(0, func(b *kir.Builder) { b.MovI(9, 7) }, nil)
	})
	for lane, v := range got {
		want := uint32(100)
		if lane < 16 {
			want = 7
		}
		if v != want {
			t.Fatalf("lane %d = %d, want %d", lane, v, want)
		}
	}
}

func TestSelSelectsPerLane(t *testing.T) {
	got := runLanes(t, func(k *kir.Builder) {
		k.MovI(10, 1).MovI(11, 2)
		k.AndI(12, 8, 1)
		k.SetPI(1, isa.CmpEQ, 12, 0)
		k.Sel(9, 10, 11, 1) // even lanes 1, odd lanes 2
	})
	for lane, v := range got {
		want := uint32(1 + lane%2)
		if v != want {
			t.Fatalf("lane %d = %d, want %d", lane, v, want)
		}
	}
}

func TestNestedDivergence(t *testing.T) {
	got := runLanes(t, func(k *kir.Builder) {
		k.MovI(9, 0)
		k.SetPI(0, isa.CmpLT, 8, 16)
		k.If(0, func(b *kir.Builder) {
			b.SetPI(1, isa.CmpLT, 8, 8)
			b.If(1, func(b *kir.Builder) {
				b.MovI(9, 1) // lanes 0..7
			}, func(b *kir.Builder) {
				b.MovI(9, 2) // lanes 8..15
			})
		}, func(b *kir.Builder) {
			b.MovI(9, 3) // lanes 16..31
		})
		k.IAddI(9, 9, 10) // all lanes reconverged
	})
	for lane, v := range got {
		var want uint32
		switch {
		case lane < 8:
			want = 11
		case lane < 16:
			want = 12
		default:
			want = 13
		}
		if v != want {
			t.Fatalf("lane %d = %d, want %d", lane, v, want)
		}
	}
}

func TestLaneVaryingLoopTripCounts(t *testing.T) {
	got := runLanes(t, func(k *kir.Builder) {
		k.MovI(9, 0)
		k.IAddI(13, 8, 1) // lane's trip count = laneid+1
		k.For(14, 13, func(b *kir.Builder) {
			b.IAddI(9, 9, 1)
		})
	})
	for lane, v := range got {
		if v != uint32(lane+1) {
			t.Fatalf("lane %d looped %d times, want %d", lane, v, lane+1)
		}
	}
}

func TestSFUAndFloatOps(t *testing.T) {
	got := runLanes(t, func(k *kir.Builder) {
		k.MovI(9, int32(f32bits(16.0)))
		k.FSqrt(9, 9)
		k.FAdd(9, 9, 9) // 2*sqrt(16) = 8
	})
	for lane, v := range got {
		if v != f32bits(8.0) {
			t.Fatalf("lane %d = %#x, want float 8", lane, v)
		}
	}
}

func f32bits(f float32) uint32 { return math.Float32bits(f) }
