package sim_test

import (
	"testing"

	"carsgo/internal/abi"
	"carsgo/internal/cars"
	"carsgo/internal/config"
	"carsgo/internal/isa"
	"carsgo/internal/kir"
	"carsgo/internal/mem"
	"carsgo/internal/sim"
)

// deepChainModule builds a depth-N chain whose frames total well beyond
// any Low allocation, with data-dependent values that must survive the
// circular-stack spill path to produce the right output.
func deepChainModule(depth int) *kir.Module {
	m := &kir.Module{Name: "deep"}
	for i := 0; i < depth; i++ {
		name := chainName(i)
		b := kir.NewFunc(name).SetCalleeSaved(3)
		b.Mov(16, 4).
			IAddI(17, 16, int32(i+1)).
			IMad(18, 16, 17, 17)
		if i+1 < depth {
			b.IAddI(4, 4, 1).
				Call(chainName(i + 1))
		}
		b.IAdd(4, 4, 16).
			Xor(4, 4, 17).
			IAdd(4, 4, 18).
			Ret()
		m.AddFunc(b.MustBuild())
	}
	k := kir.NewKernel("main")
	k.S2R(8, isa.SrTID).
		S2R(9, isa.SrCTAID).
		S2R(10, isa.SrNTID).
		IMad(17, 9, 10, 8).
		ShlI(12, 17, 2).
		IAdd(19, 4, 12).
		Mov(4, 17).
		Call(chainName(0)).
		StG(19, 0, 4).
		Exit()
	m.AddFunc(k.MustBuild())
	return m
}

func chainName(i int) string { return "deep" + string(rune('a'+i)) }

// TestCircularStackTrapsPreserveValues forces a stack far smaller than
// the chain's total demand (Low watermark at depth 12): nearly every
// call evicts the bottom frame and every return fills it back, and the
// final values must still match the baseline bit-for-bit.
func TestCircularStackTrapsPreserveValues(t *testing.T) {
	m := deepChainModule(12)
	base, err := abi.Link(abi.Baseline, m)
	if err != nil {
		t.Fatal(err)
	}
	crs, err := abi.Link(abi.CARS, m)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg sim.Config, prog *isa.Program) ([]uint32, uint64) {
		gpu, err := sim.New(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		const n = 4 * 128
		out := gpu.Alloc(n)
		st, err := gpu.Run(isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 4, Block: 128}, Params: []uint32{out}})
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]uint32, n)
		copy(vals, gpu.Global()[out/4:int(out/4)+n])
		return vals, st.TrapSpillSlots
	}
	ref, _ := run(config.V100(), base)
	cfg := config.WithCARSPolicy(config.V100(),
		cars.ForcedPolicy(cars.Level{Kind: cars.KindLow, N: 1}))
	got, spilled := run(cfg, crs)
	if spilled == 0 {
		t.Fatal("Low watermark at depth 12 should trap")
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("out[%d]: baseline %#x, trapping CARS %#x", i, ref[i], got[i])
		}
	}
}

// TestHighWatermarkEliminatesSpills: at High, an acyclic chain must
// produce zero spill traffic of any kind (§VI-C's claim).
func TestHighWatermarkEliminatesSpills(t *testing.T) {
	m := deepChainModule(8)
	crs, err := abi.Link(abi.CARS, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.WithCARSPolicy(config.V100(),
		cars.ForcedPolicy(cars.Level{Kind: cars.KindHigh}))
	gpu, err := sim.New(cfg, crs)
	if err != nil {
		t.Fatal(err)
	}
	out := gpu.Alloc(256)
	st, err := gpu.Run(isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 2, Block: 128}, Params: []uint32{out}})
	if err != nil {
		t.Fatal(err)
	}
	if st.TrapCalls != 0 || st.TrapSpillSlots != 0 {
		t.Errorf("High watermark trapped: %d calls, %d slots", st.TrapCalls, st.TrapSpillSlots)
	}
	if st.L1D.Accesses[mem.ClassLocalSpill] != 0 {
		t.Errorf("spill traffic at High: %d sectors", st.L1D.Accesses[mem.ClassLocalSpill])
	}
}

// TestAdaptiveConvergesAcrossLaunches drives the same kernel three
// times: by the third launch, every block should run at one level (the
// remembered best), not the split exploration mix.
func TestAdaptiveConvergesAcrossLaunches(t *testing.T) {
	m := deepChainModule(10)
	crs, err := abi.Link(abi.CARS, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.WithCARS(config.V100())
	gpu, err := sim.New(cfg, crs)
	if err != nil {
		t.Fatal(err)
	}
	out := gpu.Alloc(64 * 128)
	launch := isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 64, Block: 128}, Params: []uint32{out}}
	var last map[string]int
	for i := 0; i < 3; i++ {
		st, err := gpu.Run(launch)
		if err != nil {
			t.Fatal(err)
		}
		last = st.CARSLevels
	}
	if len(last) != 1 {
		t.Errorf("third launch still mixes levels: %v", last)
	}
}

// TestBankConflictsSlowButTransparent: enabling the operand-collector
// banking model may change cycle counts but never results.
func TestBankConflictsSlowButTransparent(t *testing.T) {
	m := deepChainModule(6)
	prog, err := abi.Link(abi.Baseline, m)
	if err != nil {
		t.Fatal(err)
	}
	run := func(banks int) ([]uint32, int64) {
		cfg := config.V100()
		cfg.RFBanks = banks
		gpu, err := sim.New(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		out := gpu.Alloc(128)
		st, err := gpu.Run(isa.Launch{Kernel: "main", Dim: isa.Dim3{Grid: 1, Block: 128}, Params: []uint32{out}})
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]uint32, 128)
		copy(vals, gpu.Global()[out/4:out/4+128])
		return vals, st.Cycles
	}
	refVals, refCycles := run(0)
	bankVals, bankCycles := run(2)
	for i := range refVals {
		if refVals[i] != bankVals[i] {
			t.Fatalf("banking changed out[%d]", i)
		}
	}
	if bankCycles < refCycles {
		t.Errorf("banking made the run faster: %d < %d", bankCycles, refCycles)
	}
}
