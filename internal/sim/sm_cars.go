package sim

import (
	"carsgo/internal/abi"
	"carsgo/internal/cars"
	"carsgo/internal/isa"
	"carsgo/internal/mem"
	"carsgo/internal/stats"
)

// This file is the CARS runtime inside the SM: the issue-stage
// free-register check and trap injection (§IV-A), the barrier-deadlock
// context switch, and the warp-status-check releases (§IV-B).

// carsCall performs the register-stack side of a call: the free-space
// check, then either an exact-FRU CARS frame or a fixed-size register
// window (§VII ablation).
func (s *SM) carsCall(now int64, w *Warp, fru int) {
	if s.gpu.Cfg.WindowedStacks {
		size := s.gpu.windowSize
		if size < fru {
			size = fru // a window must at least fit the frame
		}
		s.carsEnsure(now, w, size)
		w.CStack.CallWindow(size)
		return
	}
	s.carsEnsure(now, w, fru)
	w.CStack.Call()
}

// carsEnsure runs the issue-stage free-register check for a call with
// the given FRU, injecting trap spills when the warp's hardware stack
// is exhausted (Fig. 6: the oldest frames spill in wrap-around order).
func (s *SM) carsEnsure(now int64, w *Warp, fru int) {
	ops, err := w.CStack.EnsureSpace(fru)
	if err != nil {
		s.execFault(w, "%v", err)
	}
	if len(ops) == 0 {
		return
	}
	st := s.stats()
	st.TrapCalls++
	for _, op := range ops {
		st.TrapSpillSlots += uint64(op.Count)
		s.injectSpill(now, w, op)
	}
}

// carsRet performs the register-stack side of a completed return and
// fills a spilled caller frame back if needed.
func (s *SM) carsRet(now int64, w *Warp) {
	fill, err := w.CStack.Ret()
	if err != nil {
		s.execFault(w, "%v", err)
	}
	if fill != nil {
		s.stats().TrapFillSlots += uint64(fill.Count)
		s.injectSpill(now, w, *fill)
	}
}

// injectSpill moves register-stack slots to or from the local-memory
// spill window: the functional copy happens now; the timing cost flows
// through the LSU as spill-class traffic (the software trap's injected
// LDL/STL instructions). The warp blocks until the trap drains.
func (s *SM) injectSpill(now int64, w *Warp, op cars.SpillOp) {
	st := s.stats()
	spillBaseWord := abi.TrapSpillBase / 4
	var accesses []access
	for i := 0; i < op.Count; i++ {
		abs := op.StartSlot + i
		word := spillBaseWord + cars.SpillAddrSlot(abs)
		phys := w.CStack.PhysSlot(abs)
		slotVals := w.stackSlot(phys)
		if op.Fill {
			for lane := 0; lane < isa.WarpSize; lane++ {
				slotVals[lane] = *w.localWord(word, lane)
			}
		} else {
			for lane := 0; lane < isa.WarpSize; lane++ {
				*w.localWord(word, lane) = slotVals[lane]
			}
		}
		accesses = append(accesses, s.localLineAccess(w, word, ^uint32(0)))
		// The trap handler's injected LDL/STL instructions are part of
		// the dynamic instruction stream (Fig. 13's spill/fill bars).
		st.Instructions[stats.CatSpillFill]++
		if mon := s.gpu.San; mon != nil {
			mon.TrapSlot(w.GWID, op.Fill, abs, slotVals)
		}
	}
	s.enqueueTrap(w, op.Fill, accesses)
}

// enqueueTrap pushes trap traffic through the LSU.
func (s *SM) enqueueTrap(w *Warp, isFill bool, accesses []access) {
	w.TrapOutstanding++
	w.trapMaxDone = 0
	w.Wake = farFuture
	s.lsu.enqueue(&lsuEntry{
		warp:    w,
		class:   mem.ClassLocalSpill,
		isLoad:  isFill,
		isTrap:  true,
		isLocal: true,
		dst:     isa.NoReg,
		accesses: append([]access(nil),
			accesses...),
	})
}

// localLineAccess computes the coalesced line access for a warp-uniform
// local word: all 32 lanes of one word share one 128B line by the local
// address interleaving.
func (s *SM) localLineAccess(w *Warp, word int, mask uint32) access {
	lineBytes := uint64(s.gpu.Cfg.L1D.Cache.LineBytes)
	addr := s.gpu.localPhysAddr(w.GWID, word, 0)
	lineAddr := addr &^ (lineBytes - 1)
	// Sector mask from active lanes: 8 lanes per 32B sector.
	var sectors uint8
	for sec := 0; sec < 4; sec++ {
		if mask&(uint32(0xFF)<<(8*sec)) != 0 {
			sectors |= 1 << sec
		}
	}
	return access{lineAddr: lineAddr, sectors: sectors}
}

// checkBarrierContextSwitch fires the §IV-B trap: a warp is waiting at
// a barrier while sibling warps of the same block sit register-
// deactivated, so the barrier can never release without a context
// switch. The arriving warp's register state spills to memory and its
// register range passes to a deactivated sibling.
func (s *SM) checkBarrierContextSwitch(now int64, arrived *Warp) {
	if !s.gpu.Cfg.CARSEnabled {
		return
	}
	b := arrived.Block
	var target *Warp
	for _, sw := range s.stalledWarps {
		// Only a sibling that still has to reach the barrier justifies a
		// switch; one already parked at the barrier gains nothing from
		// registers until the barrier releases.
		if sw.Block == b && !sw.Finished && !sw.AtBarrier {
			target = sw
			break
		}
	}
	if target == nil {
		return
	}
	st := s.stats()
	st.ContextSwitches++
	st.CtxSwitchSlots += uint64(arrived.RegCount)

	// Spill the arriving warp's whole register state.
	s.spillWarpState(now, arrived)
	base, count := arrived.RegBase, arrived.RegCount
	arrived.HasRegs = false
	arrived.SwappedOut = true
	s.stalledWarps = append(s.stalledWarps, arrived)

	// Hand the registers to the deactivated sibling.
	s.removeStalled(target)
	target.RegBase, target.RegCount = base, count
	target.HasRegs = true
	if target.SwappedOut {
		target.SwappedOut = false
		st.CtxSwitchSlots += uint64(count)
		s.fillWarpState(now, target) // parks until the fill drains
	} else {
		// First activation: fresh architectural state.
		s.zeroRegs(target)
		s.loadParams(target)
		target.Wake = now
	}
}

// ctxBaseWord is where context-switched register state lives in the
// warp's local memory, above the trap spill window.
const ctxBaseWord = abi.TrapSpillBase/4 + cars.SpillWindowSlots

func (s *SM) spillWarpState(now int64, w *Warp) {
	var accesses []access
	for i := 0; i < w.RegCount; i++ {
		vals := &s.regArena[w.RegBase+i]
		word := ctxBaseWord + i
		for lane := 0; lane < isa.WarpSize; lane++ {
			*w.localWord(word, lane) = vals[lane]
		}
		accesses = append(accesses, s.localLineAccess(w, word, ^uint32(0)))
	}
	s.enqueueTrap(w, false, accesses)
}

func (s *SM) fillWarpState(now int64, w *Warp) {
	var accesses []access
	for i := 0; i < w.RegCount; i++ {
		vals := &s.regArena[w.RegBase+i]
		word := ctxBaseWord + i
		for lane := 0; lane < isa.WarpSize; lane++ {
			vals[lane] = *w.localWord(word, lane)
		}
		accesses = append(accesses, s.localLineAccess(w, word, ^uint32(0)))
	}
	s.enqueueTrap(w, true, accesses)
}

func (s *SM) removeStalled(w *Warp) {
	for i, sw := range s.stalledWarps {
		if sw == w {
			s.stalledWarps = append(s.stalledWarps[:i], s.stalledWarps[i+1:]...)
			return
		}
	}
}

// warpStatusCheck runs when a warp finishes (EXIT): it releases the
// finished warp's registers and reactivates waiting warps (§IV-B's
// warp status check unit releasing one waiting warp).
func (s *SM) warpStatusCheck(now int64, finished *Warp) {
	if finished.HasRegs {
		s.regAlloc.Release(finished.RegBase, finished.RegCount)
		finished.HasRegs = false
	}
	// Reactivate stalled warps while register space allows.
	for len(s.stalledWarps) > 0 {
		w := s.stalledWarps[0]
		if w.Finished {
			s.stalledWarps = s.stalledWarps[1:]
			continue
		}
		base, ok := s.regAlloc.Alloc(w.Block.RegsPerWarp)
		if !ok {
			break
		}
		s.stalledWarps = s.stalledWarps[1:]
		w.RegBase, w.RegCount = base, w.Block.RegsPerWarp
		w.HasRegs = true
		if w.SwappedOut {
			w.SwappedOut = false
			s.stats().CtxSwitchSlots += uint64(w.RegCount)
			s.fillWarpState(now, w) // parks until the fill drains
		} else {
			s.zeroRegs(w)
			s.loadParams(w)
			if w.Wake > now && !w.AtBarrier {
				w.Wake = now
			}
		}
	}
}
