package sim

import (
	"carsgo/internal/isa"
	"carsgo/internal/mem"
)

// access is one coalesced line request (line address + sector mask).
type access struct {
	lineAddr uint64
	sectors  uint8
}

// lsuEntry is one warp memory instruction (or trap-injected operation)
// in flight through the load-store unit.
type lsuEntry struct {
	warp    *Warp
	class   mem.AccessClass
	isLoad  bool
	isTrap  bool
	isLocal bool
	dst     uint8

	accesses    []access
	next        int // index of the next access to dispatch
	outstanding int
	dispatched  bool
	maxDone     int64
}

// lsu is the per-SM load-store unit: a FIFO of memory instructions
// dispatching sector accesses into the L1D under the port budget
// (L1DSectorsPerCycle). The paper's bandwidth interference lives here:
// spill/fill sectors occupy ports and queue slots that global accesses
// then wait for.
type lsu struct {
	sm    *SM
	queue []*lsuEntry
	cap   int
}

func (l *lsu) hasSpace() bool { return len(l.queue) < l.cap }
func (l *lsu) busy() bool     { return len(l.queue) > 0 }

func (l *lsu) enqueue(e *lsuEntry) { l.queue = append(l.queue, e) }

// tick dispatches sector accesses for the queue head(s) within the
// cycle's port budget.
func (l *lsu) tick(now int64) {
	budget := l.sm.gpu.Cfg.L1DSectorsPerCycle
	for len(l.queue) > 0 && budget > 0 {
		e := l.queue[0]
		for e.next < len(e.accesses) {
			acc := e.accesses[e.next]
			cost := popcount8(acc.sectors)
			if cost > budget {
				return
			}
			if e.isLoad {
				e.outstanding++
				ok := l.sm.l1d.Load(now, acc.lineAddr, acc.sectors, e.class, func(done int64) {
					e.outstanding--
					if done > e.maxDone {
						e.maxDone = done
					}
					if e.outstanding == 0 && e.dispatched {
						l.finish(e)
					}
				})
				if !ok {
					e.outstanding--
					return // MSHR full: retry next cycle
				}
			} else if e.isLocal {
				l.sm.l1d.StoreLocal(now, acc.lineAddr, acc.sectors, e.class)
			} else {
				l.sm.l1d.StoreGlobal(now, acc.lineAddr, acc.sectors)
			}
			l.sm.noteTraffic(now, e.class, cost)
			budget -= cost
			e.next++
		}
		e.dispatched = true
		if !e.isLoad || e.outstanding == 0 {
			if e.isLoad && e.maxDone == 0 {
				e.maxDone = now
			}
			l.finish(e)
		}
		l.queue = l.queue[1:]
	}
}

// finish resolves an entry's effect on its warp. For loads the
// destination register becomes readable at the data-arrival cycle; for
// trap operations the warp wakes when the last one drains.
func (l *lsu) finish(e *lsuEntry) {
	w := e.warp
	if e.isTrap {
		w.TrapOutstanding--
		if e.maxDone > w.trapMaxDone {
			w.trapMaxDone = e.maxDone
		}
		if w.TrapOutstanding == 0 {
			w.Wake = w.trapMaxDone
			// Warps that still cannot run (context-switched out, at a
			// barrier, deactivated) stay parked for their unblock event.
			if w.SwappedOut || !w.HasRegs || w.Finished || w.AtBarrier {
				w.Wake = farFuture
			}
		}
		return
	}
	if e.isLoad && e.dst != isa.NoReg {
		w.ReadyAt[e.dst] = e.maxDone
		// The warp may be parked waiting on this register; wake it at
		// the data-arrival cycle so the scheduler rescans it.
		if w.Wake > e.maxDone && w.TrapOutstanding == 0 {
			w.Wake = e.maxDone
		}
	}
}

func popcount8(m uint8) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}
