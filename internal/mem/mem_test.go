package mem

import (
	"math/rand"
	"testing"
)

func testCacheConfig() CacheConfig {
	return CacheConfig{Bytes: 8 * 1024, Assoc: 4, LineBytes: 128, SectorBytes: 32}
}

func TestCacheGeometry(t *testing.T) {
	c := testCacheConfig()
	if c.Sectors() != 4 {
		t.Fatalf("sectors = %d", c.Sectors())
	}
	if c.Lines() != 64 {
		t.Fatalf("lines = %d", c.Lines())
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(testCacheConfig())
	hit, miss := c.Access(0, 0b0011, ClassGlobal)
	if hit != 0 || miss != 0b0011 {
		t.Fatalf("cold access: hit=%b miss=%b", hit, miss)
	}
	c.Fill(0, 0b0011)
	hit, miss = c.Access(0, 0b0001, ClassGlobal)
	if hit != 0b0001 || miss != 0 {
		t.Fatalf("warm access: hit=%b miss=%b", hit, miss)
	}
	// Partial sector miss on a present line.
	hit, miss = c.Access(0, 0b1100, ClassGlobal)
	if hit != 0 || miss != 0b1100 {
		t.Fatalf("sector miss: hit=%b miss=%b", hit, miss)
	}
	if c.Stats.Accesses[ClassGlobal] != 5 {
		t.Fatalf("access count = %d", c.Stats.Accesses[ClassGlobal])
	}
	if c.Stats.Misses[ClassGlobal] != 4 {
		t.Fatalf("miss count = %d", c.Stats.Misses[ClassGlobal])
	}
}

func TestCacheLRUEviction(t *testing.T) {
	cfg := testCacheConfig()
	c := NewCache(cfg)
	sets := cfg.Lines() / cfg.Assoc
	// Fill one set past its associativity; the first line evicts.
	addr := func(i int) uint64 { return uint64(i) * uint64(sets) * uint64(cfg.LineBytes) }
	for i := 0; i <= cfg.Assoc; i++ {
		c.Access(addr(i), 0b1111, ClassGlobal)
		c.Fill(addr(i), 0b1111)
	}
	if _, ok := c.Probe(addr(0)); ok {
		t.Fatal("LRU line not evicted")
	}
	if _, ok := c.Probe(addr(1)); !ok {
		t.Fatal("wrong line evicted")
	}
}

func TestDirtyWriteback(t *testing.T) {
	cfg := testCacheConfig()
	c := NewCache(cfg)
	sets := cfg.Lines() / cfg.Assoc
	addr := func(i int) uint64 { return uint64(i) * uint64(sets) * uint64(cfg.LineBytes) }
	c.Fill(addr(0), 0b1111)
	c.MarkDirty(addr(0), 0b0011)
	for i := 1; i <= cfg.Assoc; i++ {
		c.Fill(addr(i), 0b1111)
	}
	if c.Stats.Writebacks != 2 {
		t.Fatalf("writebacks = %d, want 2 dirty sectors", c.Stats.Writebacks)
	}
}

// Property: hits+misses == accesses per class, under random traffic.
func TestCacheAccountingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewCache(testCacheConfig())
	var hits, misses uint64
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(256)) * 128
		mask := uint8(rng.Intn(15) + 1)
		h, m := c.Access(addr, mask, ClassGlobal)
		hits += uint64(popcount8(h))
		misses += uint64(popcount8(m))
		if h&m != 0 {
			t.Fatal("sector both hit and missed")
		}
		if h|m != mask {
			t.Fatal("hit+miss must cover the request")
		}
		if m != 0 {
			c.Fill(addr, m)
		}
	}
	if c.Stats.Misses[ClassGlobal] != misses {
		t.Fatalf("miss accounting: %d vs %d", c.Stats.Misses[ClassGlobal], misses)
	}
	if c.Stats.Accesses[ClassGlobal] != hits+misses {
		t.Fatalf("access accounting: %d vs %d", c.Stats.Accesses[ClassGlobal], hits+misses)
	}
}

func newTestSystem() *System {
	return NewSystem(SystemConfig{
		L2:                  CacheConfig{Bytes: 64 * 1024, Assoc: 8, LineBytes: 128, SectorBytes: 32},
		L2Latency:           100,
		L2SectorsPerCycle:   4,
		DRAMLatency:         200,
		DRAMSectorsPerCycle: 2,
	}, 1<<16)
}

func TestSystemAllocAligned(t *testing.T) {
	s := newTestSystem()
	a := s.Alloc(10)
	b := s.Alloc(10)
	if a%256 != 0 || b%256 != 0 {
		t.Fatalf("allocations not 256B aligned: %d %d", a, b)
	}
	if b <= a {
		t.Fatal("allocations overlap")
	}
	s.WriteGlobal(a, 42)
	if s.ReadGlobal(a) != 42 {
		t.Fatal("global round trip failed")
	}
}

func TestFetchLatencies(t *testing.T) {
	s := newTestSystem()
	// Cold fetch goes to DRAM: >= L2 + DRAM latency.
	done := s.FetchLine(0, 0, 0b1111, ClassGlobal)
	if done < 300 {
		t.Fatalf("cold fetch done at %d, want >= 300", done)
	}
	// Second fetch of the same line is an L2 hit: roughly L2 latency.
	done2 := s.FetchLine(done, 0, 0b1111, ClassGlobal)
	if done2-done < 100 || done2-done > 120 {
		t.Fatalf("L2 hit latency = %d", done2-done)
	}
}

func TestBandwidthSerialisation(t *testing.T) {
	s := newTestSystem()
	// Saturate L2 bandwidth: many requests at cycle 0 must serialise.
	var last int64
	for i := 0; i < 32; i++ {
		done := s.FetchLine(0, uint64(i*128), 0b1111, ClassGlobal)
		if done < last {
			t.Fatal("completion times went backwards")
		}
		last = done
	}
	// 32 lines × 4 sectors at 4 sectors/cycle = ≥32 cycles of service
	// beyond the base latency.
	if last < 300+28 {
		t.Fatalf("bandwidth not serialised: last=%d", last)
	}
}

func TestEventOrdering(t *testing.T) {
	s := newTestSystem()
	var order []int
	s.Schedule(10, func(int64) { order = append(order, 1) })
	s.Schedule(5, func(int64) { order = append(order, 0) })
	s.Schedule(10, func(int64) { order = append(order, 2) })
	s.RunEvents(4)
	if len(order) != 0 {
		t.Fatal("events fired early")
	}
	if got := s.NextEventCycle(); got != 5 {
		t.Fatalf("next event = %d", got)
	}
	s.RunEvents(10)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v (same-cycle events must be FIFO)", order)
	}
	if s.NextEventCycle() != -1 {
		t.Fatal("queue should be empty")
	}
}

func newTestL1(sys *System, allHit bool) *L1 {
	return NewL1(L1Config{
		Cache:        CacheConfig{Bytes: 4 * 1024, Assoc: 4, LineBytes: 128, SectorBytes: 32},
		HitLatency:   20,
		MSHRs:        4,
		AllHitSpills: allHit,
	}, sys)
}

func TestL1LoadHitAndMiss(t *testing.T) {
	sys := newTestSystem()
	l1 := newTestL1(sys, false)
	var doneAt int64 = -1
	ok := l1.Load(0, 0, 0b0001, ClassGlobal, func(c int64) { doneAt = c })
	if !ok {
		t.Fatal("load rejected")
	}
	if doneAt != -1 {
		t.Fatal("miss completed synchronously")
	}
	sys.RunEvents(1000)
	if doneAt < 100 {
		t.Fatalf("miss completed at %d", doneAt)
	}
	// Now a hit: completes immediately at hit latency.
	var hitAt int64 = -1
	l1.Load(doneAt, 0, 0b0001, ClassGlobal, func(c int64) { hitAt = c })
	if hitAt != doneAt+20 {
		t.Fatalf("hit at %d, want %d", hitAt, doneAt+20)
	}
}

func TestL1MSHRMergeAndLimit(t *testing.T) {
	sys := newTestSystem()
	l1 := newTestL1(sys, false)
	completions := 0
	for i := 0; i < 3; i++ {
		if !l1.Load(0, 0, 0b0001, ClassGlobal, func(int64) { completions++ }) {
			t.Fatal("merge rejected")
		}
	}
	if l1.PendingMSHRs() != 1 {
		t.Fatalf("merged loads used %d MSHRs", l1.PendingMSHRs())
	}
	// Distinct lines consume entries until the limit.
	for i := 1; i < 4; i++ {
		if !l1.Load(0, uint64(i)*128, 0b0001, ClassGlobal, func(int64) {}) {
			t.Fatalf("line %d rejected below limit", i)
		}
	}
	if l1.Load(0, 9*128, 0b0001, ClassGlobal, func(int64) {}) {
		t.Fatal("load accepted with MSHRs full")
	}
	if l1.MSHRStalls != 1 {
		t.Fatalf("stalls = %d", l1.MSHRStalls)
	}
	sys.RunEvents(10000)
	if completions != 3 {
		t.Fatalf("merged completions = %d", completions)
	}
	if l1.PendingMSHRs() != 0 {
		t.Fatal("MSHRs leaked")
	}
}

func TestAllHitSpillsBypass(t *testing.T) {
	sys := newTestSystem()
	l1 := newTestL1(sys, true)
	var at int64
	l1.Load(100, 512, 0b1111, ClassLocalSpill, func(c int64) { at = c })
	if at != 120 {
		t.Fatalf("ALL-HIT spill at %d, want hit latency", at)
	}
	if l1.Stats().Misses[ClassLocalSpill] != 0 {
		t.Fatal("ALL-HIT spill missed")
	}
	// Globals still behave normally.
	missed := false
	l1.Load(100, 1024, 0b0001, ClassGlobal, func(int64) { missed = true })
	sys.RunEvents(10000)
	if !missed {
		t.Fatal("global load never completed")
	}
	if l1.Stats().Misses[ClassGlobal] == 0 {
		t.Fatal("global load should miss the cold cache")
	}
}

func TestLocalStoreWriteAllocate(t *testing.T) {
	sys := newTestSystem()
	l1 := newTestL1(sys, false)
	l1.StoreLocal(0, 0, 0b1111, ClassLocalSpill)
	if sectors, ok := l1.Cache().Probe(0); !ok || sectors != 0b1111 {
		t.Fatal("local store did not allocate")
	}
	// A subsequent fill/load hits without L2 traffic.
	var at int64 = -1
	l1.Load(10, 0, 0b1111, ClassLocalSpill, func(c int64) { at = c })
	if at != 30 {
		t.Fatalf("spill fill after store: %d", at)
	}
}

func TestGlobalStoreWriteThrough(t *testing.T) {
	sys := newTestSystem()
	l1 := newTestL1(sys, false)
	before := sys.L2().Stats.TotalAccesses()
	l1.StoreGlobal(0, 0, 0b0011)
	if sys.L2().Stats.TotalAccesses() == before {
		t.Fatal("global store did not write through to L2")
	}
	// No-allocate: the line is absent from L1.
	if _, ok := l1.Cache().Probe(0); ok {
		t.Fatal("write-through store allocated in L1")
	}
}
