package mem

// L1Config parameterises a per-SM L1 cache front-end.
type L1Config struct {
	Cache      CacheConfig
	HitLatency int64
	MSHRs      int
	// AllHitSpills models the paper's ALL-HIT study (§VI-A2): spill/fill
	// accesses always hit without traversing the cache, but still pay
	// the hit latency and port bandwidth.
	AllHitSpills bool
}

type l1Waiter struct {
	needed   uint8
	complete func(int64)
}

type l1MSHR struct {
	pending uint8 // sectors requested from L2, not yet arrived
	arrived uint8
	waiters []l1Waiter
}

// L1 is a per-SM first-level cache with MSHRs, backed by the shared
// System. Loads that miss allocate an MSHR and complete when the fill
// arrives; global stores write through; local stores write back with
// allocate-on-write (spill frames are warp-private and fully written,
// so no fetch-on-write is needed).
type L1 struct {
	cache *Cache
	sys   *System
	cfg   L1Config
	mshrs map[uint64]*l1MSHR

	// MSHRStalls counts cycles the LSU could not proceed for want of an
	// MSHR entry.
	MSHRStalls uint64
}

// NewL1 builds an L1 front-end.
func NewL1(cfg L1Config, sys *System) *L1 {
	return &L1{cache: NewCache(cfg.Cache), sys: sys, cfg: cfg, mshrs: map[uint64]*l1MSHR{}}
}

// Cache exposes the underlying tag array for statistics.
func (l *L1) Cache() *Cache { return l.cache }

// Stats returns the tag-array statistics.
func (l *L1) Stats() *CacheStats { return &l.cache.Stats }

// LineBytes returns the line size.
func (l *L1) LineBytes() int { return l.cfg.Cache.LineBytes }

// SectorBytes returns the sector size.
func (l *L1) SectorBytes() int { return l.cfg.Cache.SectorBytes }

// Load processes one coalesced load access (a line address plus sector
// mask). complete is invoked exactly once with the cycle at which all
// requested sectors are available. Load reports false — and performs
// nothing — if an MSHR is required but none is free; the caller retries.
func (l *L1) Load(now int64, lineAddr uint64, sectorMask uint8, class AccessClass, complete func(int64)) bool {
	if l.cfg.AllHitSpills && class == ClassLocalSpill {
		l.cache.Stats.Accesses[class] += uint64(popcount8(sectorMask))
		complete(now + l.cfg.HitLatency)
		return true
	}
	// Reserve MSHR capacity before mutating tag state: a miss with no
	// free MSHR must leave the cache untouched so the retry is clean.
	sectors, present := l.cache.Probe(lineAddr)
	if !present || sectorMask&^sectors != 0 {
		if _, merged := l.mshrs[lineAddr]; !merged && len(l.mshrs) >= l.cfg.MSHRs {
			l.MSHRStalls++
			return false
		}
	}

	_, miss := l.cache.Access(lineAddr, sectorMask, class)
	if miss == 0 {
		complete(now + l.cfg.HitLatency)
		return true
	}
	m, ok := l.mshrs[lineAddr]
	if !ok {
		m = &l1MSHR{}
		l.mshrs[lineAddr] = m
	}
	newSectors := miss &^ (m.pending | m.arrived)
	m.waiters = append(m.waiters, l1Waiter{needed: miss, complete: complete})
	if newSectors != 0 {
		m.pending |= newSectors
		done := l.sys.FetchLine(now, lineAddr, newSectors, class)
		l.sys.Schedule(done, func(cycle int64) { l.fill(cycle, lineAddr, newSectors) })
	}
	return true
}

func (l *L1) fill(now int64, lineAddr uint64, sectors uint8) {
	evDirty, evAddr := l.cache.Fill(lineAddr, sectors)
	if evDirty > 0 {
		l.sys.Writeback(now, evAddr, evDirty)
	}
	m, ok := l.mshrs[lineAddr]
	if !ok {
		return
	}
	m.arrived |= sectors
	m.pending &^= sectors
	kept := m.waiters[:0]
	for _, w := range m.waiters {
		if w.needed&^m.arrived == 0 {
			w.complete(now)
		} else {
			kept = append(kept, w)
		}
	}
	m.waiters = kept
	if m.pending == 0 && len(m.waiters) == 0 {
		delete(l.mshrs, lineAddr)
	}
}

// StoreGlobal processes a coalesced global store: write-through,
// no-allocate. Stores complete asynchronously and never stall the warp.
func (l *L1) StoreGlobal(now int64, lineAddr uint64, sectorMask uint8) {
	hit, _ := l.cache.Access(lineAddr, sectorMask, ClassGlobal)
	if hit != 0 {
		// Keep L1 contents coherent with the write-through data.
		l.cache.MarkDirty(lineAddr, hit)
	}
	l.sys.WriteThrough(now, lineAddr, sectorMask, ClassGlobal)
}

// StoreLocal processes a coalesced local store (a spill when class is
// ClassLocalSpill): write-back with allocate-on-write. Spill frames are
// warp-private full-sector writes, so the allocation fetches nothing.
func (l *L1) StoreLocal(now int64, lineAddr uint64, sectorMask uint8, class AccessClass) {
	if l.cfg.AllHitSpills && class == ClassLocalSpill {
		l.cache.Stats.Accesses[class] += uint64(popcount8(sectorMask))
		return
	}
	_, miss := l.cache.Access(lineAddr, sectorMask, class)
	if miss != 0 {
		evDirty, evAddr := l.cache.Fill(lineAddr, miss)
		if evDirty > 0 {
			l.sys.Writeback(now, evAddr, evDirty)
		}
	}
	l.cache.MarkDirty(lineAddr, sectorMask)
}

// PendingMSHRs returns the number of in-flight MSHR entries.
func (l *L1) PendingMSHRs() int { return len(l.mshrs) }
