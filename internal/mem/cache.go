// Package mem models the GPU memory hierarchy: sectored set-associative
// caches (L1D, L1I, L2 tags), MSHRs, port bandwidth, an L2/DRAM latency
// and bandwidth model, and per-warp access coalescing.
//
// The model is deliberately shaped around the two interference effects
// the paper separates (§I, §VI-A): capacity interference (spill lines
// evicting useful global data) and bandwidth interference (spill sectors
// consuming L1D ports and L2/DRAM bandwidth that global accesses need).
package mem

// AccessClass labels memory traffic for the paper's breakdowns.
type AccessClass uint8

// Traffic classes (Fig. 2 / Fig. 9 categories).
const (
	ClassGlobal     AccessClass = iota // global loads/stores
	ClassLocalSpill                    // ABI spill/fill traffic
	ClassLocalOther                    // non-spill local accesses
	ClassShared                        // shared-memory (not via L1)
	ClassInst                          // instruction fetch
	NumClasses
)

func (c AccessClass) String() string {
	switch c {
	case ClassGlobal:
		return "global"
	case ClassLocalSpill:
		return "spill/fill"
	case ClassLocalOther:
		return "local-other"
	case ClassShared:
		return "shared"
	case ClassInst:
		return "inst"
	}
	return "?"
}

// CacheConfig sizes one cache.
type CacheConfig struct {
	Bytes       int
	Assoc       int
	LineBytes   int // 128 on V100
	SectorBytes int // 32 on V100
}

// Sectors returns sectors per line.
func (c CacheConfig) Sectors() int { return c.LineBytes / c.SectorBytes }

// Lines returns the total line count.
func (c CacheConfig) Lines() int { return c.Bytes / c.LineBytes }

type line struct {
	tag     uint64
	valid   bool
	sectors uint8 // valid-sector bitmask
	dirty   uint8 // dirty-sector bitmask
	lru     uint64
}

// CacheStats counts cache events by traffic class.
type CacheStats struct {
	Accesses   [NumClasses]uint64 // sector accesses
	Misses     [NumClasses]uint64 // sector misses
	LineFills  uint64
	Writebacks uint64 // dirty sector writebacks on eviction
}

// TotalAccesses sums sector accesses over all classes.
func (s *CacheStats) TotalAccesses() uint64 {
	var t uint64
	for _, v := range s.Accesses {
		t += v
	}
	return t
}

// TotalMisses sums sector misses over all classes.
func (s *CacheStats) TotalMisses() uint64 {
	var t uint64
	for _, v := range s.Misses {
		t += v
	}
	return t
}

// Cache is a sectored, set-associative cache tag array with LRU
// replacement. It tracks tags and sector validity only; data values live
// in the functional backing stores.
type Cache struct {
	cfg     CacheConfig
	sets    int
	assoc   int
	lines   []line // sets × assoc
	tick    uint64
	Stats   CacheStats
	setMask uint64
}

// NewCache builds a cache from the config. Sets are forced to a power of
// two by rounding down, keeping index math branch-free.
func NewCache(cfg CacheConfig) *Cache {
	sets := cfg.Lines() / cfg.Assoc
	// round down to power of two
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	return &Cache{
		cfg:     cfg,
		sets:    sets,
		assoc:   cfg.Assoc,
		lines:   make([]line, sets*cfg.Assoc),
		setMask: uint64(sets - 1),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineAddr converts a byte address to a line-aligned address.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ uint64(c.cfg.LineBytes-1)
}

// SectorOf returns the sector index of a byte address within its line.
func (c *Cache) SectorOf(addr uint64) uint {
	return uint((addr % uint64(c.cfg.LineBytes)) / uint64(c.cfg.SectorBytes))
}

func (c *Cache) set(lineAddr uint64) []line {
	idx := (lineAddr / uint64(c.cfg.LineBytes)) & c.setMask
	return c.lines[idx*uint64(c.assoc) : (idx+1)*uint64(c.assoc)]
}

func (c *Cache) tagOf(lineAddr uint64) uint64 { return lineAddr / uint64(c.cfg.LineBytes) }

// Probe looks up a line without updating LRU or stats. It returns the
// valid-sector mask, or ok=false if the line is absent.
func (c *Cache) Probe(lineAddr uint64) (sectors uint8, ok bool) {
	tag := c.tagOf(lineAddr)
	for i := range c.set(lineAddr) {
		ln := &c.set(lineAddr)[i]
		if ln.valid && ln.tag == tag {
			return ln.sectors, true
		}
	}
	return 0, false
}

// Access performs a sector-masked lookup, counting one access per
// requested sector under the class. It returns the subset of requested
// sectors that hit and the subset that missed. LRU is updated on contact.
func (c *Cache) Access(lineAddr uint64, sectorMask uint8, class AccessClass) (hit, miss uint8) {
	c.tick++
	n := popcount8(sectorMask)
	c.Stats.Accesses[class] += uint64(n)
	tag := c.tagOf(lineAddr)
	set := c.set(lineAddr)
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			ln.lru = c.tick
			hit = sectorMask & ln.sectors
			miss = sectorMask &^ ln.sectors
			c.Stats.Misses[class] += uint64(popcount8(miss))
			return hit, miss
		}
	}
	c.Stats.Misses[class] += uint64(n)
	return 0, sectorMask
}

// Fill installs sectors for a line, allocating (and possibly evicting) a
// way if the line is absent. It returns the evicted dirty-sector count
// (writeback traffic) and the evicted line address.
func (c *Cache) Fill(lineAddr uint64, sectorMask uint8) (evictedDirty int, evictedAddr uint64) {
	c.tick++
	tag := c.tagOf(lineAddr)
	set := c.set(lineAddr)
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			ln.sectors |= sectorMask
			ln.lru = c.tick
			c.Stats.LineFills++
			return 0, 0
		}
	}
	victim := &set[0]
	for i := range set {
		ln := &set[i]
		if !ln.valid {
			victim = ln
			break
		}
		if ln.lru < victim.lru {
			victim = ln
		}
	}
	if victim.valid && victim.dirty != 0 {
		evictedDirty = popcount8(victim.dirty)
		evictedAddr = victim.tag * uint64(c.cfg.LineBytes)
		c.Stats.Writebacks += uint64(evictedDirty)
	}
	victim.tag = tag
	victim.valid = true
	victim.sectors = sectorMask
	victim.dirty = 0
	victim.lru = c.tick
	c.Stats.LineFills++
	return evictedDirty, evictedAddr
}

// MarkDirty marks sectors dirty (and valid) on a present line; it
// reports whether the line was present.
func (c *Cache) MarkDirty(lineAddr uint64, sectorMask uint8) bool {
	tag := c.tagOf(lineAddr)
	set := c.set(lineAddr)
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			ln.dirty |= sectorMask
			ln.sectors |= sectorMask
			ln.lru = c.tick
			return true
		}
	}
	return false
}

func popcount8(m uint8) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}
