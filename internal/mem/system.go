package mem

import "container/heap"

// Event is a scheduled memory-system callback.
type event struct {
	cycle int64
	seq   uint64
	fn    func(cycle int64)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)      { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any        { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peekCycle() int64 { return h[0].cycle }

// SystemConfig parameterises the shared L2/DRAM model.
type SystemConfig struct {
	L2 CacheConfig
	// L2Latency is the round-trip latency from L1 miss to L2 data return.
	L2Latency int64
	// L2SectorsPerCycle is the aggregate L2 bandwidth in 32B sectors.
	L2SectorsPerCycle float64
	// DRAMLatency is the additional latency of an L2 miss.
	DRAMLatency int64
	// DRAMSectorsPerCycle is the aggregate DRAM bandwidth in sectors.
	DRAMSectorsPerCycle float64
}

// SystemStats aggregates L2/DRAM traffic.
type SystemStats struct {
	L2Stats     CacheStats
	DRAMSectors uint64
}

// System is the shared part of the hierarchy: L2 tags, DRAM bandwidth,
// the global-memory functional backing store, and the event queue that
// delivers miss completions back to the cores.
type System struct {
	cfg   SystemConfig
	l2    *Cache
	Stats SystemStats

	events   eventHeap
	eventSeq uint64

	l2NextFree   float64
	dramNextFree float64

	global []uint32
	next   uint32 // global allocation bump pointer (bytes)
}

// NewSystem builds the shared memory system with the given global
// capacity in 32-bit words.
func NewSystem(cfg SystemConfig, globalWords int) *System {
	return &System{
		cfg:    cfg,
		l2:     NewCache(cfg.L2),
		global: make([]uint32, globalWords),
	}
}

// L2 exposes the L2 tag array (for tests and stats).
func (s *System) L2() *Cache { return s.l2 }

// Alloc reserves words of global memory, returning the byte address.
// Allocations are 256-byte aligned so distinct arrays never share lines.
func (s *System) Alloc(words int) uint32 {
	const align = 256
	s.next = (s.next + align - 1) &^ (align - 1)
	addr := s.next
	s.next += uint32(words * 4)
	if int(s.next) > len(s.global)*4 {
		panic("mem: global memory exhausted")
	}
	return addr
}

// Global returns the functional global-memory backing store.
func (s *System) Global() []uint32 { return s.global }

// ReadGlobal returns the word at the byte address.
func (s *System) ReadGlobal(addr uint32) uint32 { return s.global[addr/4] }

// WriteGlobal sets the word at the byte address.
func (s *System) WriteGlobal(addr uint32, v uint32) { s.global[addr/4] = v }

// Schedule registers fn to run at the given cycle.
func (s *System) Schedule(cycle int64, fn func(int64)) {
	s.eventSeq++
	heap.Push(&s.events, event{cycle: cycle, seq: s.eventSeq, fn: fn})
}

// RunEvents fires all events due at or before now.
func (s *System) RunEvents(now int64) {
	for len(s.events) > 0 && s.events.peekCycle() <= now {
		e := heap.Pop(&s.events).(event)
		e.fn(now)
	}
}

// NextEventCycle returns the cycle of the earliest pending event, or -1.
func (s *System) NextEventCycle() int64 {
	if len(s.events) == 0 {
		return -1
	}
	return s.events.peekCycle()
}

// reserve books sectors on a bandwidth resource and returns the cycle at
// which service begins.
func reserve(nextFree *float64, now int64, sectors int, sectorsPerCycle float64) int64 {
	start := float64(now)
	if *nextFree > start {
		start = *nextFree
	}
	*nextFree = start + float64(sectors)/sectorsPerCycle
	return int64(start)
}

// FetchLine requests the missing sectors of a line from L2 (and DRAM on
// an L2 miss) on behalf of an L1. It returns the cycle at which the data
// arrives at the requesting L1. Class attribution follows the original
// request so spill traffic is visible at every level.
func (s *System) FetchLine(now int64, lineAddr uint64, sectorMask uint8, class AccessClass) int64 {
	n := popcount8(sectorMask)
	start := reserve(&s.l2NextFree, now, n, s.cfg.L2SectorsPerCycle)
	hit, miss := s.l2.Access(lineAddr, sectorMask, class)
	s.Stats.L2Stats = s.l2.Stats
	done := start + s.cfg.L2Latency
	if miss != 0 {
		nm := popcount8(miss)
		dstart := reserve(&s.dramNextFree, done, nm, s.cfg.DRAMSectorsPerCycle)
		s.Stats.DRAMSectors += uint64(nm)
		done = dstart + s.cfg.DRAMLatency
		evDirty, _ := s.l2.Fill(lineAddr, miss)
		if evDirty > 0 {
			// L2 dirty eviction consumes DRAM write bandwidth.
			reserve(&s.dramNextFree, done, evDirty, s.cfg.DRAMSectorsPerCycle)
			s.Stats.DRAMSectors += uint64(evDirty)
		}
	}
	_ = hit
	return done
}

// WriteThrough books a write's sectors through L2 (global stores on
// GPUs write through the L1). It consumes bandwidth but completes
// asynchronously; stores do not stall the warp.
func (s *System) WriteThrough(now int64, lineAddr uint64, sectorMask uint8, class AccessClass) {
	n := popcount8(sectorMask)
	reserve(&s.l2NextFree, now, n, s.cfg.L2SectorsPerCycle)
	_, miss := s.l2.Access(lineAddr, sectorMask, class)
	if miss != 0 {
		s.l2.Fill(lineAddr, miss)
		s.l2.MarkDirty(lineAddr, miss)
		// Dirty data eventually drains to DRAM; book write bandwidth.
		nm := popcount8(miss)
		reserve(&s.dramNextFree, now, nm, s.cfg.DRAMSectorsPerCycle)
		s.Stats.DRAMSectors += uint64(nm)
	} else {
		s.l2.MarkDirty(lineAddr, sectorMask)
	}
	s.Stats.L2Stats = s.l2.Stats
}

// Writeback books an L1 dirty-eviction's sectors into L2.
func (s *System) Writeback(now int64, lineAddr uint64, sectors int) {
	reserve(&s.l2NextFree, now, sectors, s.cfg.L2SectorsPerCycle)
	s.l2.MarkDirty(lineAddr, 0) // touch LRU if present; data flow is implicit
}
