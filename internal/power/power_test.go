package power

import (
	"testing"

	"carsgo/internal/mem"
	"carsgo/internal/stats"
)

func sampleKernel() *stats.Kernel {
	k := &stats.Kernel{Cycles: 1_000_000, ThreadInstructions: 3_000_000}
	k.Instructions[stats.CatALU] = 80_000
	k.Instructions[stats.CatGlobal] = 10_000
	k.RFReads = 200_000
	k.RFWrites = 90_000
	k.L1D.Accesses[mem.ClassGlobal] = 40_000
	k.L1D.Accesses[mem.ClassLocalSpill] = 30_000
	k.L2.Accesses[mem.ClassGlobal] = 8_000
	k.DRAMSectors = 4_000
	return k
}

func TestEnergyPositiveAndComplete(t *testing.T) {
	m := NewModel(8)
	b := m.Energy(sampleKernel())
	for name, v := range map[string]float64{
		"issue": b.IssueNJ, "alu": b.ALUNJ, "rf": b.RFNJ,
		"l1": b.L1NJ, "l2": b.L2NJ, "dram": b.DRAMNJ, "static": b.StaticNJ,
	} {
		if v <= 0 {
			t.Errorf("%s energy = %v, want > 0", name, v)
		}
	}
	if b.TotalNJ() <= b.StaticNJ {
		t.Error("total must exceed any single component")
	}
}

func TestEnergyScalesWithEvents(t *testing.T) {
	m := NewModel(8)
	a := sampleKernel()
	b := sampleKernel()
	b.DRAMSectors *= 2
	if m.Energy(b).DRAMNJ <= m.Energy(a).DRAMNJ {
		t.Error("DRAM energy did not grow with traffic")
	}
	c := sampleKernel()
	c.Cycles *= 3
	if m.Energy(c).StaticNJ <= m.Energy(a).StaticNJ {
		t.Error("static energy did not grow with runtime")
	}
}

// TestEfficiencyShape captures Fig. 15's mechanism: removing spill
// traffic and shortening runtime both raise efficiency.
func TestEfficiencyShape(t *testing.T) {
	m := NewModel(8)
	base := sampleKernel()
	cars := sampleKernel()
	cars.Cycles = base.Cycles * 3 / 4
	cars.L1D.Accesses[mem.ClassLocalSpill] = 0
	cars.L2.Accesses[mem.ClassGlobal] /= 2
	cars.DRAMSectors /= 2
	eff := m.Efficiency(base, cars)
	if eff <= 1 {
		t.Fatalf("efficiency = %v, want > 1", eff)
	}
	// And the inverse direction.
	if inv := m.Efficiency(cars, base); inv >= 1 {
		t.Fatalf("inverse efficiency = %v, want < 1", inv)
	}
}

func TestEfficiencySameWorkIsUnity(t *testing.T) {
	m := NewModel(8)
	k := sampleKernel()
	if got := m.Efficiency(k, k); got != 1 {
		t.Fatalf("self efficiency = %v", got)
	}
}
