// Package power is an AccelWattch-style event-energy model (§V-A).
//
// Energy is dynamic event counts times per-event energies, plus static
// leakage proportional to runtime. The absolute coefficients are
// order-of-magnitude figures for a 12nm-class GPU (pJ per event); the
// paper's energy-efficiency result is shaped by relative changes in
// event counts and runtime, which this model preserves: CARS removes
// spill/fill L1/L2/DRAM events and shortens runtime, both of which cut
// energy, while extra CARS micro-ops add negligible issue energy.
package power

import "carsgo/internal/stats"

// Coefficients are per-event dynamic energies in picojoules and static
// power in watts.
type Coefficients struct {
	IssuePJ      float64 // per issued warp-instruction (fetch/decode/issue)
	ALUPJ        float64 // per lane ALU op
	SFUPJ        float64 // per lane SFU op
	RFAccessPJ   float64 // per 128B register-file read or write
	L1SectorPJ   float64 // per 32B L1 sector access
	L2SectorPJ   float64 // per 32B L2 sector access
	DRAMSectorPJ float64 // per 32B DRAM sector transfer
	SharedPJ     float64 // per shared-memory warp access
	StaticWPerSM float64 // leakage per SM
	ClockGHz     float64
}

// DefaultCoefficients returns V100-class energy coefficients.
func DefaultCoefficients() Coefficients {
	return Coefficients{
		IssuePJ:      15,
		ALUPJ:        1.2,
		SFUPJ:        6.0,
		RFAccessPJ:   9.0,
		L1SectorPJ:   28,
		L2SectorPJ:   85,
		DRAMSectorPJ: 512,
		SharedPJ:     22,
		StaticWPerSM: 1.9,
		ClockGHz:     1.4,
	}
}

// Breakdown is the per-component energy in nanojoules.
type Breakdown struct {
	IssueNJ  float64
	ALUNJ    float64
	RFNJ     float64
	L1NJ     float64
	L2NJ     float64
	DRAMNJ   float64
	StaticNJ float64
}

// TotalNJ sums all components.
func (b Breakdown) TotalNJ() float64 {
	return b.IssueNJ + b.ALUNJ + b.RFNJ + b.L1NJ + b.L2NJ + b.DRAMNJ + b.StaticNJ
}

// Model evaluates energy for kernel statistics.
type Model struct {
	Coef   Coefficients
	NumSMs int
}

// NewModel builds a model for a GPU with the given SM count.
func NewModel(numSMs int) *Model {
	return &Model{Coef: DefaultCoefficients(), NumSMs: numSMs}
}

// Energy computes the energy breakdown for one kernel's stats.
func (m *Model) Energy(k *stats.Kernel) Breakdown {
	c := m.Coef
	var b Breakdown
	totalInstr := float64(k.TotalInstructions())
	b.IssueNJ = totalInstr * c.IssuePJ / 1000

	aluLanes := float64(k.ThreadInstructions)
	b.ALUNJ = (aluLanes*c.ALUPJ + float64(k.Instructions[stats.CatSFU])*32*c.SFUPJ) / 1000

	b.RFNJ = float64(k.RFReads+k.RFWrites) * c.RFAccessPJ / 1000

	l1 := float64(k.L1D.TotalAccesses() + k.L1I.TotalAccesses())
	b.L1NJ = (l1*c.L1SectorPJ + float64(k.Instructions[stats.CatShared])*c.SharedPJ) / 1000

	b.L2NJ = float64(k.L2.TotalAccesses()+k.L1D.Writebacks) * c.L2SectorPJ / 1000
	b.DRAMNJ = float64(k.DRAMSectors) * c.DRAMSectorPJ / 1000

	seconds := float64(k.Cycles) / (c.ClockGHz * 1e9)
	b.StaticNJ = c.StaticWPerSM * float64(m.NumSMs) * seconds * 1e9
	return b
}

// Efficiency returns the relative energy efficiency of cfg versus base
// for the same work: E(base)/E(cfg). Values above 1 mean cfg is more
// energy-efficient (the paper's Fig. 15 metric).
func (m *Model) Efficiency(base, cfg *stats.Kernel) float64 {
	eb := m.Energy(base).TotalNJ()
	ec := m.Energy(cfg).TotalNJ()
	if ec == 0 {
		return 0
	}
	return eb / ec
}
