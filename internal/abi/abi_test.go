package abi

import (
	"testing"

	"carsgo/internal/isa"
	"carsgo/internal/kir"
)

func twoFuncModule() *kir.Module {
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("main")
	k.MovI(4, 7).Call("f").StG(4, 0, 4).Exit()
	m.AddFunc(k.MustBuild())

	f := kir.NewFunc("f").SetCalleeSaved(2)
	f.Mov(16, 4).IAddI(17, 16, 1).Call("g").IAdd(4, 4, 16).Ret()
	m.AddFunc(f.MustBuild())

	g := kir.NewFunc("g")
	g.IMulI(4, 4, 3).Ret()
	m.AddFunc(g.MustBuild())
	return m
}

func countOps(f *isa.Function, op isa.Op) int {
	n := 0
	for i := range f.Code {
		if f.Code[i].Op == op {
			n++
		}
	}
	return n
}

func TestBaselineLoweringSpills(t *testing.T) {
	prog, err := Link(Baseline, twoFuncModule())
	if err != nil {
		t.Fatal(err)
	}
	f := prog.FuncByName("f")
	if got := countOps(f, isa.OpStL); got != 2 {
		t.Errorf("prologue spills = %d, want 2", got)
	}
	if got := countOps(f, isa.OpLdL); got != 2 {
		t.Errorf("epilogue fills = %d, want 2", got)
	}
	for i := range f.Code {
		if f.Code[i].Op.IsLocal() && !f.Code[i].Spill {
			t.Errorf("ABI local op %d not marked Spill", i)
		}
	}
	if got := countOps(f, isa.OpPushRFP) + countOps(f, isa.OpPush) + countOps(f, isa.OpPop); got != 0 {
		t.Errorf("baseline lowering emitted %d CARS ops", got)
	}
	// A function with no callee-saved registers spills nothing.
	g := prog.FuncByName("g")
	if got := countOps(g, isa.OpStL) + countOps(g, isa.OpLdL); got != 0 {
		t.Errorf("leaf with no saved regs spills %d ops", got)
	}
}

func TestCARSLowering(t *testing.T) {
	prog, err := Link(CARS, twoFuncModule())
	if err != nil {
		t.Fatal(err)
	}
	f := prog.FuncByName("f")
	if got := countOps(f, isa.OpStL) + countOps(f, isa.OpLdL); got != 0 {
		t.Errorf("CARS lowering kept %d spill ops", got)
	}
	if got := countOps(f, isa.OpPush); got != 1 {
		t.Errorf("PUSH count = %d", got)
	}
	if got := countOps(f, isa.OpPop); got != 1 {
		t.Errorf("POP count = %d", got)
	}
	// Every call site is preceded by PUSHRFP (§IV-A).
	for _, fn := range prog.Funcs {
		for i := range fn.Code {
			if fn.Code[i].Op.IsCall() {
				if i == 0 || fn.Code[i-1].Op != isa.OpPushRFP {
					t.Errorf("%s[%d]: call not preceded by PUSHRFP", fn.Name, i)
				}
			}
		}
	}
}

func TestFRUEmbedding(t *testing.T) {
	prog, err := Link(CARS, twoFuncModule())
	if err != nil {
		t.Fatal(err)
	}
	k := prog.FuncByName("main")
	f := prog.FuncByName("f")
	g := prog.FuncByName("g")
	// main calls f (2 saved): FRU 3. f calls g (0 saved): FRU 1.
	for i := range k.Code {
		if k.Code[i].Op == isa.OpCall && k.Code[i].FRU != f.FRU() {
			t.Errorf("main's call FRU = %d, want %d", k.Code[i].FRU, f.FRU())
		}
	}
	for i := range f.Code {
		if f.Code[i].Op == isa.OpCall && f.Code[i].FRU != g.FRU() {
			t.Errorf("f's call FRU = %d, want %d", f.Code[i].FRU, g.FRU())
		}
		if f.Code[i].Op == isa.OpRet && f.Code[i].FRU != f.FRU() {
			t.Errorf("f's ret FRU = %d, want %d", f.Code[i].FRU, f.FRU())
		}
	}
	if f.FRU() != 3 || g.FRU() != 1 {
		t.Errorf("FRUs: f=%d g=%d", f.FRU(), g.FRU())
	}
}

func TestLinkErrors(t *testing.T) {
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("main")
	k.Call("missing").Exit()
	m.AddFunc(k.MustBuild())
	if _, err := Link(Baseline, m); err == nil {
		t.Error("undefined call target linked")
	}

	m2 := &kir.Module{Name: "m2"}
	a := kir.NewKernel("dup")
	a.Exit()
	b := kir.NewKernel("dup")
	b.Exit()
	m2.AddFunc(a.MustBuild())
	m2.AddFunc(b.MustBuild())
	if _, err := Link(Baseline, m2); err == nil {
		t.Error("duplicate symbol linked")
	}

	if _, err := Link(Baseline); err == nil {
		t.Error("empty link succeeded")
	}
}

func TestSeparateCompilation(t *testing.T) {
	// Kernel in one module, device function in another: cross-module
	// resolution (the paper's -dc separate compilation).
	mMain := &kir.Module{Name: "main"}
	k := kir.NewKernel("main")
	k.MovI(4, 1).Call("libfn").Exit()
	mMain.AddFunc(k.MustBuild())
	mLib := &kir.Module{Name: "lib"}
	f := kir.NewFunc("libfn").SetCalleeSaved(1)
	f.Mov(16, 4).Ret()
	mLib.AddFunc(f.MustBuild())

	prog, err := Link(Baseline, mMain, mLib)
	if err != nil {
		t.Fatal(err)
	}
	if prog.FuncByName("libfn") == nil {
		t.Fatal("library function missing")
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStaticRegsPerWarpWorstCase(t *testing.T) {
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("main")
	k.Call("big").Exit()
	m.AddFunc(k.MustBuild())
	big := kir.NewFunc("big").SetCalleeSaved(30) // uses up to R45
	big.Mov(16, 4).Ret()
	m.AddFunc(big.MustBuild())
	prog, err := Link(Baseline, m)
	if err != nil {
		t.Fatal(err)
	}
	if prog.StaticRegsPerWarp != 46 {
		t.Errorf("StaticRegsPerWarp = %d, want 46", prog.StaticRegsPerWarp)
	}
}

func TestIndirectCallLinking(t *testing.T) {
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("main")
	k.MovFuncIdx(8, "va").CallIndirect(8, "va", "vb").Exit()
	m.AddFunc(k.MustBuild())
	va := kir.NewFunc("va").SetCalleeSaved(1)
	va.Mov(16, 4).Ret()
	m.AddFunc(va.MustBuild())
	vb := kir.NewFunc("vb").SetCalleeSaved(5)
	vb.Mov(16, 4).IAddI(17, 16, 1).IAddI(18, 17, 1).IAddI(19, 18, 1).IAddI(20, 19, 1).Ret()
	m.AddFunc(vb.MustBuild())

	prog, err := Link(CARS, m)
	if err != nil {
		t.Fatal(err)
	}
	km := prog.FuncByName("main")
	vbIdx := -1
	for i, f := range prog.Funcs {
		if f.Name == "vb" {
			vbIdx = i
		}
	}
	for i := range km.Code {
		in := &km.Code[i]
		if in.Op == isa.OpCallI {
			// Indirect FRU is the max over candidates (§III-C): vb's 6.
			if in.FRU != prog.Funcs[vbIdx].FRU() {
				t.Errorf("indirect FRU = %d, want %d", in.FRU, prog.Funcs[vbIdx].FRU())
			}
		}
		if in.Op == isa.OpMovI && in.Dst == 8 {
			// MovFuncIdx resolved to va's linked index.
			va := prog.FuncByName("va")
			if prog.Funcs[in.Imm].Name != va.Name {
				t.Errorf("MovFuncIdx resolved to %s", prog.Funcs[in.Imm].Name)
			}
		}
	}
	if len(km.IndirectTargets) != 1 || len(km.IndirectTargets[0]) != 2 {
		t.Errorf("indirect targets = %v", km.IndirectTargets)
	}
}

func TestBranchTargetsSurviveLowering(t *testing.T) {
	// A loop spanning a call site: CARS lowering inserts PUSHRFP before
	// the call, which must not break the loop's branch targets.
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("main")
	k.MovI(8, 4)
	k.For(9, 8, func(b *kir.Builder) {
		b.MovI(4, 1)
		b.Call("f")
	})
	k.Exit()
	m.AddFunc(k.MustBuild())
	f := kir.NewFunc("f").SetCalleeSaved(1)
	f.Mov(16, 4).Ret()
	m.AddFunc(f.MustBuild())

	for _, mode := range []Mode{Baseline, CARS} {
		prog, err := Link(mode, twoCopies(m))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		km := prog.FuncByName("main")
		for i := range km.Code {
			in := &km.Code[i]
			if in.Op == isa.OpBra {
				if in.Target < 0 || in.Target > len(km.Code) {
					t.Errorf("%v: branch target %d out of range", mode, in.Target)
				}
				if in.Target > 0 && in.Target < len(km.Code) {
					// A backward branch must land on the loop body, not
					// inside an injected micro-op sequence boundary error.
					tgt := km.Code[in.Target].Op
					if tgt == isa.OpRet {
						t.Errorf("%v: branch lands on RET", mode)
					}
				}
			}
		}
	}
}

func twoCopies(m *kir.Module) *kir.Module { return m }
