package abi

import (
	"testing"

	"carsgo/internal/isa"
	"carsgo/internal/kir"
)

func countCalls(f *isa.Function) int {
	n := 0
	for i := range f.Code {
		if f.Code[i].Op.IsCall() {
			n++
		}
	}
	return n
}

func TestInlineRemovesDirectCalls(t *testing.T) {
	flat, err := InlineAll(twoFuncModule())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Link(Baseline, flat)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.FuncByName("main")
	if countCalls(k) != 0 {
		t.Fatalf("inlined kernel still calls: %s", k.Disassemble())
	}
	// No spills remain anywhere reachable.
	for i := range k.Code {
		if k.Code[i].Spill {
			t.Fatal("inlined kernel still spills")
		}
	}
}

func TestInlineGrowsRegisterDemand(t *testing.T) {
	flatMod, err := InlineAll(twoFuncModule())
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Link(Baseline, flatMod)
	if err != nil {
		t.Fatal(err)
	}
	sep, err := Link(Baseline, twoFuncModule())
	if err != nil {
		t.Fatal(err)
	}
	if flat.FuncByName("main").RegsUsed <= sep.FuncByName("main").RegsUsed {
		t.Errorf("inlining did not grow kernel registers: %d vs %d",
			flat.FuncByName("main").RegsUsed, sep.FuncByName("main").RegsUsed)
	}
}

func TestInlineKeepsRecursion(t *testing.T) {
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("main")
	k.MovI(4, 5).Call("fib").Exit()
	m.AddFunc(k.MustBuild())
	fib := kir.NewFunc("fib").SetCalleeSaved(2)
	fib.Mov(16, 4).
		MovI(17, 0).
		SetPI(0, isa.CmpGE, 4, 2).
		If(0, func(b *kir.Builder) {
			b.IAddI(4, 16, -1).Call("fib").Mov(17, 4).
				IAddI(4, 16, -2).Call("fib").IAdd(4, 4, 17)
		}, nil).
		Ret()
	m.AddFunc(fib.MustBuild())

	flatMod, err := InlineAll(m)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Link(Baseline, flatMod)
	if err != nil {
		t.Fatal(err)
	}
	// The kernel inlined one level of fib; the recursion survives as a
	// real function with real calls.
	fibFlat := prog.FuncByName("fib")
	if fibFlat == nil {
		t.Fatal("recursive function dropped")
	}
	if countCalls(fibFlat) == 0 {
		t.Fatal("recursive call sites disappeared")
	}
}

// TestInlineKeptFunctionPreservesRegisters is the regression test for
// the inliner ABI bug: a kept function whose body absorbed inlined
// children must extend its callee-saved set to cover the registers the
// splice remapped onto it, or callers lose live state across the call.
func TestInlineKeptFunctionPreservesRegisters(t *testing.T) {
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("main")
	k.Call("rec").Exit()
	m.AddFunc(k.MustBuild())
	// rec calls helper (inlined into rec) and itself (kept).
	rec := kir.NewFunc("rec").SetCalleeSaved(1)
	rec.Mov(16, 4).
		Call("helper").
		SetPI(0, isa.CmpGT, 16, 4).
		If(0, func(b *kir.Builder) {
			b.ShrI(4, 16, 1).Call("rec")
		}, nil).
		Ret()
	m.AddFunc(rec.MustBuild())
	helper := kir.NewFunc("helper").SetCalleeSaved(4)
	helper.Mov(16, 4).IAddI(17, 16, 1).IAddI(18, 17, 1).IAddI(19, 18, 1).Ret()
	m.AddFunc(helper.MustBuild())

	flatMod, err := InlineAll(m)
	if err != nil {
		t.Fatal(err)
	}
	var recFlat *kir.Func
	for _, f := range flatMod.Funcs {
		if f.Name == "rec" {
			recFlat = f
		}
	}
	if recFlat == nil {
		t.Fatal("rec dropped")
	}
	if want := recFlat.RegsUsed - isa.FirstCalleeSaved; recFlat.CalleeSaved < want {
		t.Fatalf("kept function saves %d regs but uses %d above R16",
			recFlat.CalleeSaved, want)
	}
}

func TestInlineIndirectKept(t *testing.T) {
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("main")
	k.MovFuncIdx(8, "va").CallIndirect(8, "va", "vb").Exit()
	m.AddFunc(k.MustBuild())
	for _, n := range []string{"va", "vb"} {
		f := kir.NewFunc(n).SetCalleeSaved(1)
		f.Mov(16, 4).Ret()
		m.AddFunc(f.MustBuild())
	}
	flatMod, err := InlineAll(m)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Link(Baseline, flatMod)
	if err != nil {
		t.Fatal(err)
	}
	km := prog.FuncByName("main")
	if countCalls(km) != 1 {
		t.Fatalf("indirect call must survive inlining, got %d calls", countCalls(km))
	}
	if prog.FuncByName("va") == nil || prog.FuncByName("vb") == nil {
		t.Fatal("indirect candidates dropped")
	}
}

func TestInlineExtraLocalOffsetsShift(t *testing.T) {
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("main")
	k.Call("f").Exit()
	m.AddFunc(k.MustBuild())
	f := kir.NewFunc("f").SetCalleeSaved(1).SetExtraLocalBytes(8)
	f.Mov(16, 4).
		StL(1, 0, 16).
		LdL(4, 1, 4).
		Ret()
	m.AddFunc(f.MustBuild())

	flatMod, err := InlineAll(m)
	if err != nil {
		t.Fatal(err)
	}
	var km *kir.Func
	for _, fn := range flatMod.Funcs {
		if fn.IsKernel {
			km = fn
		}
	}
	if km.ExtraLocalBytes != 8 {
		t.Fatalf("extra locals not accumulated: %d", km.ExtraLocalBytes)
	}
}
