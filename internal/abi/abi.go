// Package abi implements the GPU function-calling ABI the paper studies
// and the link step that produces executable programs.
//
// The calling convention mirrors contemporary NVIDIA GPUs (§II):
//
//   - R0..R3   scratch, clobbered freely
//   - R4..R15  argument / return / temporary registers (caller-saved)
//   - R16..    callee-saved registers, allocated contiguously from R16
//   - R1       per-thread local-memory stack pointer (grows down)
//
// In Baseline mode, each function's prologue spills the callee-saved
// registers it uses to its local-memory frame with STL and its epilogue
// fills them back with LDL — the traffic the paper shows consumes 40.4%
// of L1D accesses. In CARS mode, those spills/fills are replaced with
// PUSHRFP/PUSH/POP register-stack micro-ops that move no data (§III-A);
// the hardware renames callee-saved registers into the warp's register
// stack instead.
package abi

import (
	"errors"
	"fmt"
	"sort"

	"carsgo/internal/callgraph"
	"carsgo/internal/isa"
	"carsgo/internal/kir"
	"carsgo/internal/vet"
)

// Register convention constants.
const (
	RegSP       = 1 // local-memory stack pointer
	RegArg0     = 4 // first argument register
	RegRet      = 4 // return-value register
	NumArgRegs  = 12
	RegScratch0 = 0
)

// LocalStackBytes is the per-thread software stack for local frames.
// The stack grows down from this address; addresses at and above it are
// reserved for CARS trap spill slots (see TrapSpillBase).
const LocalStackBytes = 24 * 1024

// TrapSpillBase is the first per-thread local address of the CARS trap
// spill area. Register-stack slot p spills to TrapSpillBase + 4*p.
const TrapSpillBase = LocalStackBytes

// Mode selects how spills/fills are lowered.
type Mode int

const (
	// Baseline lowers callee-saved preservation to STL/STL local-memory
	// spills and LDL fills, as nvcc does.
	Baseline Mode = iota
	// CARS lowers callee-saved preservation to register-stack push/pop
	// micro-ops; local memory is touched only via software traps.
	CARS
	// SharedSpill lowers callee-saved preservation to shared-memory
	// stores/loads (a CRAT-like scheme, §VII): spill traffic bypasses
	// the L1D entirely but each warp's spill frame consumes shared
	// memory, which costs occupancy. R0 serves as the per-warp
	// shared-memory spill stack pointer, initialised by the hardware at
	// warp start; recursion is rejected at link time (the frame bound
	// must be static).
	SharedSpill
)

func (m Mode) String() string {
	switch m {
	case CARS:
		return "cars"
	case SharedSpill:
		return "smem-spill"
	}
	return "baseline"
}

// Modes lists every ABI mode, in declaration order, for tools that
// link the same modules under each mode (carsvet, the differential
// harness, transparency tests).
var Modes = []Mode{Baseline, CARS, SharedSpill}

// ErrRecursive is wrapped by Link when the shared-memory spill ABI
// rejects a recursive kernel; callers use errors.Is to skip the
// combination instead of string-matching the message.
var ErrRecursive = errors.New("recursive call graph")

// RegSmemSP is the shared-memory spill stack pointer register used by
// the SharedSpill mode. Generated code must not clobber it.
const RegSmemSP = 0

// Link lowers and links a set of modules into an executable program.
// It resolves symbolic call targets across modules (separate compilation),
// embeds each callee's FRU into call/return instructions (§IV-A), and
// computes the baseline worst-case register allocation per warp.
func Link(mode Mode, modules ...*kir.Module) (*isa.Program, error) {
	var funcs []*kir.Func
	for _, m := range modules {
		funcs = append(funcs, m.Funcs...)
	}
	if len(funcs) == 0 {
		return nil, fmt.Errorf("abi: no functions to link")
	}
	index := make(map[string]int, len(funcs))
	for i, f := range funcs {
		if _, dup := index[f.Name]; dup {
			return nil, fmt.Errorf("abi: duplicate symbol %q", f.Name)
		}
		index[f.Name] = i
	}

	prog := &isa.Program{Kernels: map[string]int{}, CARS: mode == CARS}
	bodyMaps := make([][]int, len(funcs))
	for i, f := range funcs {
		lowered, bodyMap, err := lower(mode, f)
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, lowered)
		bodyMaps[i] = bodyMap
		if f.IsKernel {
			prog.Kernels[f.Name] = i
		}
	}

	// Resolve call targets, indirect candidate sets, and function refs.
	for i, f := range funcs {
		lf := prog.Funcs[i]
		indirect := 0
		for ci := range lf.Code {
			in := &lf.Code[ci]
			switch in.Op {
			case isa.OpCall:
				name := f.CallNames[in.Callee]
				ti, ok := index[name]
				if !ok {
					return nil, fmt.Errorf("abi: %s calls undefined %q", f.Name, name)
				}
				if funcs[ti].IsKernel {
					return nil, fmt.Errorf("abi: %s calls kernel %q", f.Name, name)
				}
				in.Callee = ti
				lf.Callees = append(lf.Callees, ti)
			case isa.OpCallI:
				cands := f.IndirectTargets[indirect]
				indirect++
				var resolved []int
				for _, name := range cands {
					ti, ok := index[name]
					if !ok {
						return nil, fmt.Errorf("abi: %s indirect candidate %q undefined", f.Name, name)
					}
					resolved = append(resolved, ti)
				}
				sort.Ints(resolved)
				lf.IndirectTargets = append(lf.IndirectTargets, resolved)
			}
		}
	}

	// Embed FRUs now that targets are known. For indirect calls the
	// linker uses the highest register usage among the candidate set
	// (§III-C). Fix up MovFuncIdx immediates.
	for i, f := range funcs {
		lf := prog.Funcs[i]
		indirect := 0
		for ci := range lf.Code {
			in := &lf.Code[ci]
			switch in.Op {
			case isa.OpCall:
				in.FRU = prog.Funcs[in.Callee].FRU()
			case isa.OpCallI:
				maxFRU := 0
				for _, ti := range lf.IndirectTargets[indirect] {
					if fr := prog.Funcs[ti].FRU(); fr > maxFRU {
						maxFRU = fr
					}
				}
				indirect++
				in.FRU = maxFRU
			case isa.OpRet:
				in.FRU = lf.FRU()
			}
		}
		for preIdx, name := range f.FuncRefs {
			ti, ok := index[name]
			if !ok {
				return nil, fmt.Errorf("abi: %s references undefined %q", f.Name, name)
			}
			lf.Code[bodyMaps[i][preIdx]].Imm = int32(ti)
		}
	}

	// Baseline register allocation: the linker determines the worst-case
	// register usage at any point in the call graph — the function using
	// the most registers — and allocates each warp that many (§II).
	maxRegs := 0
	for _, lf := range prog.Funcs {
		if lf.RegsUsed > maxRegs {
			maxRegs = lf.RegsUsed
		}
	}
	prog.StaticRegsPerWarp = maxRegs

	if mode == SharedSpill {
		if err := sizeSmemSpill(prog); err != nil {
			return nil, err
		}
	}

	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// LinkStrict links like Link and then runs the static verifier over
// the result (internal/vet), rejecting the program if any
// error-severity diagnostic is found: uninitialized reads, clobbered
// callee-saved registers, unbalanced push/pop paths, broken
// spill/fill pairing, or call-graph stack demand beyond the declared
// FRUs. Warnings and the recursion Info diagnostic do not reject.
func LinkStrict(mode Mode, modules ...*kir.Module) (*isa.Program, error) {
	prog, err := Link(mode, modules...)
	if err != nil {
		return nil, err
	}
	if err := vet.ErrorOrNil(vet.Program(prog)); err != nil {
		return nil, fmt.Errorf("abi: program failed verification: %w", err)
	}
	return prog, nil
}

// sizeSmemSpill computes the worst-case per-warp shared-memory spill
// frame over every kernel's call graph. Recursion has no static bound
// and is rejected, as CRAT-like schemes must.
func sizeSmemSpill(p *isa.Program) error {
	worst := 0
	for name := range p.Kernels {
		a, err := callgraph.Analyze(p, name)
		if err != nil {
			return err
		}
		if a.Cyclic {
			return fmt.Errorf("abi: kernel %q has a %w; the shared-memory spill ABI needs a static frame bound", name, ErrRecursive)
		}
		// Deepest chain of callee-saved bytes (the saved-RFP slot is a
		// CARS concept; shared spills store only the registers).
		depth := map[int]int{}
		var walk func(fi int) int
		walk = func(fi int) int {
			if d, ok := depth[fi]; ok {
				return d
			}
			n := a.Nodes[fi]
			maxChild := 0
			for _, ti := range n.Callees {
				if d := walk(ti); d > maxChild {
					maxChild = d
				}
			}
			d := 4*n.Func.CalleeSaved + maxChild
			depth[fi] = d
			return d
		}
		if d := walk(a.Root); d > worst {
			worst = d
		}
	}
	p.SmemSpillPerThread = worst
	return nil
}

// frameBytes is the local-memory frame a function needs under the mode
// (SharedSpill and CARS keep only the explicit extras in local memory).
func frameBytes(mode Mode, f *kir.Func) int {
	fb := f.ExtraLocalBytes
	if mode == Baseline {
		fb += 4 * f.CalleeSaved
	}
	return fb
}

// lower produces the executable form of one pre-ABI function.
//
// Frame layout (R1-relative, stack grows down): extras occupy offsets
// [0, ExtraLocalBytes); baseline spill slots follow at ExtraLocalBytes.
// Body code addresses extras via R1 directly, so both modes see extras
// at the same offsets.
//
// The returned bodyMap maps each pre-ABI instruction index (plus one
// past-the-end entry) to its lowered index, for relocating references.
func lower(mode Mode, f *kir.Func) (*isa.Function, []int, error) {
	out := &isa.Function{
		Name:            f.Name,
		IsKernel:        f.IsKernel,
		RegsUsed:        f.RegsUsed,
		CalleeSaved:     f.CalleeSaved,
		LocalFrameBytes: frameBytes(mode, f),
	}
	if out.RegsUsed < RegArg0 {
		out.RegsUsed = RegArg0 // R0-R3 always exist
	}
	frame := frameBytes(mode, f)

	var code []isa.Instruction
	if f.IsKernel {
		// Kernel init: establish the local stack pointer.
		code = append(code, isa.Instruction{
			Op: isa.OpMovI, Dst: RegSP, SrcA: isa.NoReg, SrcB: isa.NoReg,
			SrcC: isa.NoReg, Pred: isa.NoPred, Imm: LocalStackBytes,
		})
		if f.ExtraLocalBytes > 0 {
			code = append(code, addSP(-int32(f.ExtraLocalBytes)))
		}
		if f.CalleeSaved != 0 {
			return nil, nil, fmt.Errorf("abi: kernel %s declares callee-saved registers", f.Name)
		}
	} else {
		if frame > 0 {
			code = append(code, addSP(-int32(frame)))
		}
		switch mode {
		case Baseline:
			// Prologue: spill callee-saved registers to the frame.
			for k := 0; k < f.CalleeSaved; k++ {
				code = append(code, isa.Instruction{
					Op: isa.OpStL, Dst: isa.NoReg, SrcA: RegSP, SrcB: isa.NoReg,
					SrcC: uint8(isa.FirstCalleeSaved + k), Pred: isa.NoPred,
					Imm: int32(f.ExtraLocalBytes + 4*k), Spill: true,
				})
			}
		case SharedSpill:
			if f.CalleeSaved > 0 {
				code = append(code, addSmemSP(-4*int32(f.CalleeSaved)))
				for k := 0; k < f.CalleeSaved; k++ {
					code = append(code, isa.Instruction{
						Op: isa.OpStS, Dst: isa.NoReg, SrcA: RegSmemSP, SrcB: isa.NoReg,
						SrcC: uint8(isa.FirstCalleeSaved + k), Pred: isa.NoPred,
						Imm: int32(4 * k), Spill: true,
					})
				}
			}
		case CARS:
			if f.CalleeSaved > 0 {
				// Allocate + rename the callee-saved set (§IV-A: "after
				// each relocatable call instruction, the registers to be
				// renamed and allocated are listed in pushes").
				code = append(code, isa.Instruction{
					Op: isa.OpPush, Dst: isa.NoReg, SrcA: isa.NoReg,
					SrcB: isa.NoReg, SrcC: isa.NoReg, Pred: isa.NoPred,
					Imm: int32(f.CalleeSaved),
				})
			}
		}
	}
	prologueLen := len(code)

	// Body, with branch targets shifted and caller-side call wrapping.
	// In CARS mode every call site is preceded by a PUSHRFP micro-op
	// that saves the caller's register frame pointer (§IV-A), so the
	// per-site expansion differs between modes and targets must be
	// remapped rather than uniformly shifted.
	bodyMap := make([]int, len(f.Code)+1)
	for preIdx := range f.Code {
		bodyMap[preIdx] = len(code)
		in := f.Code[preIdx]
		if mode == CARS && (in.Op == isa.OpCall || in.Op == isa.OpCallI) {
			code = append(code, isa.Instruction{
				Op: isa.OpPushRFP, Dst: isa.NoReg, SrcA: isa.NoReg,
				SrcB: isa.NoReg, SrcC: isa.NoReg, Pred: isa.NoPred,
			})
		}
		if in.Op == isa.OpRet {
			// Epilogue before the return.
			switch mode {
			case Baseline:
				for k := 0; k < f.CalleeSaved; k++ {
					code = append(code, isa.Instruction{
						Op: isa.OpLdL, Dst: uint8(isa.FirstCalleeSaved + k),
						SrcA: RegSP, SrcB: isa.NoReg, SrcC: isa.NoReg,
						Pred: isa.NoPred, Imm: int32(f.ExtraLocalBytes + 4*k),
						Spill: true,
					})
				}
			case SharedSpill:
				for k := 0; k < f.CalleeSaved; k++ {
					code = append(code, isa.Instruction{
						Op: isa.OpLdS, Dst: uint8(isa.FirstCalleeSaved + k),
						SrcA: RegSmemSP, SrcB: isa.NoReg, SrcC: isa.NoReg,
						Pred: isa.NoPred, Imm: int32(4 * k), Spill: true,
					})
				}
				code = append(code, addSmemSP(4*int32(f.CalleeSaved)))
			case CARS:
				if f.CalleeSaved > 0 {
					code = append(code, isa.Instruction{
						Op: isa.OpPop, Dst: isa.NoReg, SrcA: isa.NoReg,
						SrcB: isa.NoReg, SrcC: isa.NoReg, Pred: isa.NoPred,
						Imm: int32(f.CalleeSaved),
					})
				}
			}
			if frame > 0 {
				code = append(code, addSP(int32(frame)))
			}
		}
		code = append(code, in)
	}
	bodyMap[len(f.Code)] = len(code)

	// Remap branch targets from pre-ABI indices to lowered indices.
	for ci := prologueLen; ci < len(code); ci++ {
		in := &code[ci]
		if in.Op == isa.OpBra {
			in.Target = bodyMap[in.Target]
			in.Target2 = bodyMap[in.Target2]
		}
	}
	out.Code = code
	return out, bodyMap, nil
}

func addSmemSP(delta int32) isa.Instruction {
	return isa.Instruction{
		Op: isa.OpIAdd, Dst: RegSmemSP, SrcA: RegSmemSP, SrcB: isa.NoReg,
		SrcC: isa.NoReg, Pred: isa.NoPred, Imm: delta,
	}
}

func addSP(delta int32) isa.Instruction {
	return isa.Instruction{
		Op: isa.OpIAdd, Dst: RegSP, SrcA: RegSP, SrcB: isa.NoReg,
		SrcC: isa.NoReg, Pred: isa.NoPred, Imm: delta,
	}
}
