package abi

import (
	"fmt"

	"carsgo/internal/isa"
	"carsgo/internal/kir"
)

// InlineAll performs whole-program inlining at the pre-ABI level,
// modelling the "fully inlined (LTO)" configuration of Fig. 16.
//
// Every direct, non-recursive call site is replaced by the callee body.
// The callee's callee-saved registers (R16..) are remapped to fresh
// registers above the caller's live range, which removes the ABI
// spills/fills entirely — and also grows the flattened kernel's static
// register demand and code footprint, reproducing inlining's occupancy
// and instruction-cache downsides. Recursive and indirect call sites are
// left as real calls, as LTO must.
//
// Sites whose remapping would exceed the register budget are also left
// as calls — the -maxrregcount-style fallback real toolchains use; the
// default budget is the ISA's 256-register limit.
func InlineAll(modules ...*kir.Module) (*kir.Module, error) {
	return InlineAllBudget(isa.MaxArchRegs, modules...)
}

// InlineAllBudget inlines like InlineAll but stops growing any one
// function past maxRegs architectural registers, keeping further call
// sites as real calls. Practical LTO uses budgets well below the ISA
// limit so inlined kernels can still reach full occupancy.
func InlineAllBudget(maxRegs int, modules ...*kir.Module) (*kir.Module, error) {
	var funcs []*kir.Func
	for _, m := range modules {
		funcs = append(funcs, m.Funcs...)
	}
	index := make(map[string]*kir.Func, len(funcs))
	for _, f := range funcs {
		if _, dup := index[f.Name]; dup {
			return nil, fmt.Errorf("abi: duplicate symbol %q", f.Name)
		}
		index[f.Name] = f
	}

	if maxRegs <= 0 || maxRegs > isa.MaxArchRegs {
		maxRegs = isa.MaxArchRegs
	}
	out := &kir.Module{Name: "lto"}
	kept := map[string]bool{} // device funcs still referenced post-inline

	for _, f := range funcs {
		if !f.IsKernel {
			continue
		}
		flat, err := flatten(index, kept, f, map[string]bool{f.Name: true}, maxRegs)
		if err != nil {
			return nil, err
		}
		out.AddFunc(flat)
	}
	// Emit still-referenced (non-inlined) device functions, flattening
	// their bodies too; flattening may reference further functions, so
	// iterate to a fixed point.
	emitted := map[string]bool{}
	for {
		progress := false
		for name := range kept {
			if emitted[name] {
				continue
			}
			emitted[name] = true
			progress = true
			flat, err := flatten(index, kept, index[name], map[string]bool{name: true}, maxRegs)
			if err != nil {
				return nil, err
			}
			out.AddFunc(flat)
		}
		if !progress {
			break
		}
	}
	return out, nil
}

// maxCalleeReg is how many callee-saved register names f consumes.
func maxCalleeReg(f *kir.Func) int {
	n := f.RegsUsed - isa.FirstCalleeSaved
	if n < 0 {
		return 0
	}
	return n
}

// flatten inlines all eligible call sites of f, maintaining an
// instruction position map so caller branch targets survive expansion.
// chain holds the names on the current inline path (cycle breaker).
func flatten(index map[string]*kir.Func, kept map[string]bool, f *kir.Func, chain map[string]bool, maxRegs int) (*kir.Func, error) {
	res := &kir.Func{
		Name:            f.Name,
		IsKernel:        f.IsKernel,
		CalleeSaved:     f.CalleeSaved,
		ExtraLocalBytes: f.ExtraLocalBytes,
		RegsUsed:        f.RegsUsed,
		FuncRefs:        map[int]string{},
	}
	allocTop := f.RegsUsed
	if allocTop < isa.FirstCalleeSaved {
		allocTop = isa.FirstCalleeSaved
	}
	extraTop := f.ExtraLocalBytes

	posMap := make([]int, len(f.Code)+1)
	type braFix struct{ resIdx, preTarget, preTarget2 int }
	var fixes []braFix

	callIdx, indirectIdx := 0, 0
	for pi := range f.Code {
		posMap[pi] = len(res.Code)
		in := f.Code[pi]
		switch in.Op {
		case isa.OpBra:
			fixes = append(fixes, braFix{len(res.Code), in.Target, in.Target2})
			res.Code = append(res.Code, in)
		case isa.OpCallI:
			res.IndirectTargets = append(res.IndirectTargets, f.IndirectTargets[indirectIdx])
			for _, t := range f.IndirectTargets[indirectIdx] {
				kept[t] = true
			}
			indirectIdx++
			res.Code = append(res.Code, in)
		case isa.OpMovI:
			if name, ok := f.FuncRefs[pi]; ok {
				res.FuncRefs[len(res.Code)] = name
				kept[name] = true
			}
			res.Code = append(res.Code, in)
		case isa.OpCall:
			name := f.CallNames[callIdx]
			callIdx++
			callee, ok := index[name]
			if !ok {
				return nil, fmt.Errorf("abi: %s calls undefined %q", f.Name, name)
			}
			keepCall := func() {
				in.Callee = len(res.CallNames)
				res.Code = append(res.Code, in)
				res.CallNames = append(res.CallNames, name)
				kept[name] = true
			}
			if chain[name] {
				keepCall()
				continue
			}
			chain[name] = true
			flatCallee, err := flatten(index, kept, callee, chain, maxRegs)
			if err != nil {
				return nil, err
			}
			delete(chain, name)
			if allocTop+maxCalleeReg(flatCallee) > maxRegs {
				keepCall()
				continue
			}
			splice(res, flatCallee, allocTop, extraTop, kept)
			newTop := allocTop + maxCalleeReg(flatCallee)
			if newTop > res.RegsUsed {
				res.RegsUsed = newTop
			}
			allocTop = newTop
			extraTop += flatCallee.ExtraLocalBytes
			res.ExtraLocalBytes = extraTop
		default:
			res.Code = append(res.Code, in)
		}
	}
	posMap[len(f.Code)] = len(res.Code)
	for _, fx := range fixes {
		res.Code[fx.resIdx].Target = posMap[fx.preTarget]
		res.Code[fx.resIdx].Target2 = posMap[fx.preTarget2]
	}
	// A kept (still-callable) function now touches every register its
	// inlined children were remapped onto; the ABI requires it to
	// preserve all of them, or callers lose live state above R16 across
	// the call (e.g. loop counters clobbered by a recursive callee).
	if !f.IsKernel {
		if cs := res.RegsUsed - isa.FirstCalleeSaved; cs > res.CalleeSaved {
			res.CalleeSaved = cs
		}
	}
	return res, nil
}

// splice appends the flattened callee body (minus its trailing Ret) to
// res, remapping callee-saved registers to start at allocTop, shifting
// R1-relative extra-local offsets by extraTop, and relocating call and
// branch metadata. Builder invariants guarantee the Ret is the final
// instruction, so dropping it leaves all intra-body indices intact and
// any branch targeting the Ret lands on the next spliced instruction.
func splice(res, flatCallee *kir.Func, allocTop, extraTop int, kept map[string]bool) {
	base := len(res.Code)
	remap := func(r uint8) uint8 {
		if r == isa.NoReg || int(r) < isa.FirstCalleeSaved {
			return r
		}
		return uint8(allocTop + int(r) - isa.FirstCalleeSaved)
	}
	indirectIdx := 0
	for bi := range flatCallee.Code {
		ci := flatCallee.Code[bi]
		if ci.Op == isa.OpRet {
			continue
		}
		ci.Dst = remap(ci.Dst)
		ci.SrcA = remap(ci.SrcA)
		ci.SrcB = remap(ci.SrcB)
		ci.SrcC = remap(ci.SrcC)
		if ci.Op == isa.OpBra {
			ci.Target += base
			ci.Target2 += base
		}
		if ci.Op.IsLocal() && ci.SrcA == RegSP {
			ci.Imm += int32(extraTop)
		}
		if ci.Op == isa.OpCall {
			cn := flatCallee.CallNames[ci.Callee]
			ci.Callee = len(res.CallNames)
			res.CallNames = append(res.CallNames, cn)
			kept[cn] = true
		}
		if ci.Op == isa.OpCallI {
			res.IndirectTargets = append(res.IndirectTargets, flatCallee.IndirectTargets[indirectIdx])
			indirectIdx++
		}
		res.Code = append(res.Code, ci)
	}
	for fi2, name2 := range flatCallee.FuncRefs {
		res.FuncRefs[fi2+base] = name2
		kept[name2] = true
	}
}
