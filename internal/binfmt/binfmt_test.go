package binfmt

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"carsgo/internal/abi"
	"carsgo/internal/isa"
	"carsgo/internal/kir"
)

func sampleProgram(t *testing.T, mode abi.Mode) *isa.Program {
	t.Helper()
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("main")
	k.S2R(8, isa.SrTID).
		SetPI(0, isa.CmpGT, 8, 4).
		If(0, func(b *kir.Builder) { b.MovI(9, 1) }, func(b *kir.Builder) { b.MovI(9, 2) }).
		Mov(4, 9).
		Call("f").
		MovFuncIdx(10, "va").
		CallIndirect(10, "va", "vb").
		StG(4, 8, 9).
		Exit()
	m.AddFunc(k.MustBuild())
	f := kir.NewFunc("f").SetCalleeSaved(3).SetExtraLocalBytes(8)
	f.Mov(16, 4).MovI(17, 5).MovI(18, 6).
		StL(1, 0, 16).
		LdL(4, 1, 0).
		Call("va").
		Ret()
	m.AddFunc(f.MustBuild())
	for _, n := range []string{"va", "vb"} {
		fn := kir.NewFunc(n).SetCalleeSaved(1)
		fn.Mov(16, 4).IMulI(4, 4, 3).Ret()
		m.AddFunc(fn.MustBuild())
	}
	prog, err := abi.Link(mode, m)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func roundTrip(t *testing.T, p *isa.Program) *isa.Program {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestRoundTripBaseline(t *testing.T) {
	p := sampleProgram(t, abi.Baseline)
	q := roundTrip(t, p)
	if q.CARS != p.CARS || q.StaticRegsPerWarp != p.StaticRegsPerWarp {
		t.Fatalf("program header mismatch: %+v vs %+v", q, p)
	}
	if len(q.Funcs) != len(p.Funcs) {
		t.Fatalf("function count: %d vs %d", len(q.Funcs), len(p.Funcs))
	}
	for i := range p.Funcs {
		pf, qf := p.Funcs[i], q.Funcs[i]
		if pf.Name != qf.Name || pf.IsKernel != qf.IsKernel ||
			pf.RegsUsed != qf.RegsUsed || pf.CalleeSaved != qf.CalleeSaved ||
			pf.LocalFrameBytes != qf.LocalFrameBytes {
			t.Fatalf("func %d metadata: %+v vs %+v", i, qf, pf)
		}
		if !reflect.DeepEqual(pf.Code, qf.Code) {
			for j := range pf.Code {
				if pf.Code[j] != qf.Code[j] {
					t.Fatalf("func %s instr %d: %+v vs %+v", pf.Name, j, qf.Code[j], pf.Code[j])
				}
			}
		}
		if !reflect.DeepEqual(pf.Callees, qf.Callees) {
			t.Fatalf("func %s callees: %v vs %v", pf.Name, qf.Callees, pf.Callees)
		}
		if !reflect.DeepEqual(pf.IndirectTargets, qf.IndirectTargets) {
			t.Fatalf("func %s indirect: %v vs %v", pf.Name, qf.IndirectTargets, pf.IndirectTargets)
		}
	}
	if !reflect.DeepEqual(p.Kernels, q.Kernels) {
		t.Fatalf("kernels: %v vs %v", q.Kernels, p.Kernels)
	}
}

func TestRoundTripCARS(t *testing.T) {
	p := sampleProgram(t, abi.CARS)
	q := roundTrip(t, p)
	if !q.CARS {
		t.Fatal("CARS flag lost")
	}
	// Push/pop micro-ops and FRUs survive.
	f := q.FuncByName("f")
	foundPush := false
	for i := range f.Code {
		if f.Code[i].Op == isa.OpPush {
			foundPush = true
		}
		if f.Code[i].Op == isa.OpRet && f.Code[i].FRU != f.FRU() {
			t.Fatalf("ret FRU lost: %d", f.Code[i].FRU)
		}
	}
	if !foundPush {
		t.Fatal("PUSH micro-op lost")
	}
}

func TestCorruptImagesRejected(t *testing.T) {
	p := sampleProgram(t, abi.Baseline)
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	cases := map[string]func([]byte) []byte{
		"empty":        func(b []byte) []byte { return nil },
		"bad magic":    func(b []byte) []byte { c := clone(b); c[0] = 'X'; return c },
		"bad version":  func(b []byte) []byte { c := clone(b); c[4] = 99; return c },
		"truncated":    func(b []byte) []byte { return clone(b)[:len(b)/2] },
		"section oob":  func(b []byte) []byte { c := clone(b); c[20] = 0xFF; c[21] = 0xFF; c[22] = 0xFF; return c },
		"many section": func(b []byte) []byte { c := clone(b); c[12] = 200; return c },
	}
	for name, corrupt := range cases {
		if _, err := Read(bytes.NewReader(corrupt(raw))); err == nil {
			t.Errorf("%s: corrupt image accepted", name)
		}
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

func TestSpillMarkSurvives(t *testing.T) {
	p := sampleProgram(t, abi.Baseline)
	q := roundTrip(t, p)
	spills := 0
	for _, f := range q.Funcs {
		for i := range f.Code {
			if f.Code[i].Spill {
				spills++
			}
		}
	}
	if spills == 0 {
		t.Fatal("spill marks lost in round trip")
	}
}

func TestWriteRejectsInvalidProgram(t *testing.T) {
	p := sampleProgram(t, abi.Baseline)
	p.Funcs[0].Code[len(p.Funcs[0].Code)-3].Callee = 99
	var buf bytes.Buffer
	if err := Write(&buf, p); err == nil {
		t.Skip("sample mutation did not hit a call; acceptable")
	}
}

// TestInstrRoundTripProperty encodes and decodes randomized (but
// well-formed) instructions via testing/quick.
func TestInstrRoundTripProperty(t *testing.T) {
	f := func(op uint8, dst, srcA, srcB, srcC, pdst, pred uint8, pneg, spill bool,
		imm int32, cmp uint8, sreg uint8, tgt2 uint16, fru uint16) bool {
		in := isa.Instruction{
			Op:  isa.Op(op % uint8(isa.OpPop+1)),
			Dst: dst, SrcA: srcA, SrcB: srcB, SrcC: srcC,
			PDst: pdst, Pred: pred, PNeg: pneg, Spill: spill,
			Cmp: isa.CmpKind(cmp % 6), Sreg: isa.Special(sreg % 6),
			Target2: int(tgt2), FRU: int(fru),
		}
		// Word2 carries exactly one of Imm/Callee/Target per opcode.
		switch in.Op {
		case isa.OpCall:
			in.Callee = int(uint32(imm) % (1 << 20))
		case isa.OpBra, isa.OpSSY:
			in.Target = int(uint32(imm) % (1 << 20))
		case isa.OpCallI:
			in.Callee = -1
			in.Imm = imm
		default:
			in.Imm = imm
		}
		var b bytes.Buffer
		if err := encodeInstr(&b, &in); err != nil {
			return false
		}
		got := decodeInstr(b.Bytes())
		if in.Op == isa.OpCallI {
			// CALLI's immediate is not meaningful; only Callee=-1 must
			// survive.
			in.Imm, got.Imm = 0, 0
		}
		return got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestProgramRoundTripProperty round-trips randomized call-chain
// programs through the binary image.
func TestProgramRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		m := &kir.Module{Name: "m"}
		n := 1 + rng.Intn(5)
		for i := n - 1; i >= 0; i-- {
			b := kir.NewFunc(fmtName(i)).SetCalleeSaved(1 + rng.Intn(6))
			b.Mov(16, 4)
			if i+1 < n && rng.Intn(2) == 0 {
				b.Call(fmtName(i + 1))
			}
			b.Ret()
			m.AddFunc(b.MustBuild())
		}
		k := kir.NewKernel("main")
		k.MovI(4, 1)
		if n > 0 {
			k.Call(fmtName(0))
		}
		k.Exit()
		m.AddFunc(k.MustBuild())
		mode := abi.Baseline
		if trial%2 == 0 {
			mode = abi.CARS
		}
		p, err := abi.Link(mode, m)
		if err != nil {
			t.Fatal(err)
		}
		q := roundTrip(t, p)
		if len(q.Funcs) != len(p.Funcs) || q.CARS != p.CARS {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
		for i := range p.Funcs {
			if !reflect.DeepEqual(p.Funcs[i].Code, q.Funcs[i].Code) {
				t.Fatalf("trial %d func %d code mismatch", trial, i)
			}
		}
	}
}

func fmtName(i int) string { return string(rune('a'+i)) + "f" }
