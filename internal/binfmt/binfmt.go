// Package binfmt serialises linked programs to a compact ELF-like
// container and back.
//
// The paper's methodology (§V-C) dumps workload binaries and statically
// analyses their ELF symbol tables to recover kernel and device-function
// information for the call-graph pass. This package plays that role for
// the repo's toolchain: abi.Link produces a Program, binfmt writes it as
// a binary image with a section table and symbol table, and the
// analysis side (cmd/carsgraph, tests) can reload it without access to
// the builder that produced it.
//
// Layout (all little-endian):
//
//	header:   magic "CARS" | version u32 | flags u32 | section count u32
//	sections: per section: kind u32 | offset u64 | size u64
//	  .code    one record per function: instruction array
//	  .symtab  one record per function: name, kind, regs, callee-saved,
//	           frame bytes, code index, FRU metadata
//	  .kernels kernel name -> function index
//	  .reloc   call-site relocations (function, pc, target, kind)
package binfmt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"carsgo/internal/isa"
)

// Magic identifies a carsgo binary image.
var Magic = [4]byte{'C', 'A', 'R', 'S'}

// Version is the current format version.
const Version = 1

// Section kinds.
const (
	secCode    = 1
	secSymtab  = 2
	secKernels = 3
	secReloc   = 4
)

// Flag bits.
const (
	// FlagCARS marks programs compiled with CARS push/pop micro-ops.
	FlagCARS = 1 << 0
)

// instrWords is the serialised instruction size in 32-bit words — four
// words (16 bytes), matching the contemporary-GPU instruction width the
// paper cites for Volta/Hopper.
const instrWords = 4

type sectionHeader struct {
	Kind   uint32
	Offset uint64
	Size   uint64
}

// Write serialises a linked program.
func Write(w io.Writer, p *isa.Program) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("binfmt: refusing to write invalid program: %w", err)
	}
	code := encodeCode(p)
	symtab := encodeSymtab(p)
	kernels := encodeKernels(p)
	reloc := encodeReloc(p)

	var flags uint32
	if p.CARS {
		flags |= FlagCARS
	}

	var hdr bytes.Buffer
	hdr.Write(Magic[:])
	binary.Write(&hdr, binary.LittleEndian, uint32(Version))
	binary.Write(&hdr, binary.LittleEndian, flags)
	binary.Write(&hdr, binary.LittleEndian, uint32(4)) // section count

	sections := []struct {
		kind uint32
		data []byte
	}{
		{secCode, code},
		{secSymtab, symtab},
		{secKernels, kernels},
		{secReloc, reloc},
	}
	offset := uint64(hdr.Len()) + uint64(len(sections))*20
	var table bytes.Buffer
	for _, s := range sections {
		binary.Write(&table, binary.LittleEndian, sectionHeader{
			Kind: s.kind, Offset: offset, Size: uint64(len(s.data)),
		})
		offset += uint64(len(s.data))
	}
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	if _, err := w.Write(table.Bytes()); err != nil {
		return err
	}
	for _, s := range sections {
		if _, err := w.Write(s.data); err != nil {
			return err
		}
	}
	return nil
}

// Read loads a program image and validates it.
func Read(r io.Reader) (*isa.Program, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) < 16 || !bytes.Equal(raw[:4], Magic[:]) {
		return nil, fmt.Errorf("binfmt: bad magic")
	}
	version := binary.LittleEndian.Uint32(raw[4:8])
	if version != Version {
		return nil, fmt.Errorf("binfmt: unsupported version %d", version)
	}
	flags := binary.LittleEndian.Uint32(raw[8:12])
	nsec := binary.LittleEndian.Uint32(raw[12:16])
	if nsec > 16 {
		return nil, fmt.Errorf("binfmt: implausible section count %d", nsec)
	}
	secs := map[uint32][]byte{}
	pos := 16
	for i := uint32(0); i < nsec; i++ {
		if pos+20 > len(raw) {
			return nil, fmt.Errorf("binfmt: truncated section table")
		}
		kind := binary.LittleEndian.Uint32(raw[pos:])
		off := binary.LittleEndian.Uint64(raw[pos+4:])
		size := binary.LittleEndian.Uint64(raw[pos+12:])
		pos += 20
		if off+size > uint64(len(raw)) {
			return nil, fmt.Errorf("binfmt: section %d out of bounds", kind)
		}
		secs[kind] = raw[off : off+size]
	}

	p := &isa.Program{Kernels: map[string]int{}, CARS: flags&FlagCARS != 0}
	if err := decodeSymtab(secs[secSymtab], p); err != nil {
		return nil, err
	}
	if err := decodeCode(secs[secCode], p); err != nil {
		return nil, err
	}
	if err := decodeKernels(secs[secKernels], p); err != nil {
		return nil, err
	}
	if err := decodeReloc(secs[secReloc], p); err != nil {
		return nil, err
	}
	maxRegs := 0
	for _, f := range p.Funcs {
		if f.RegsUsed > maxRegs {
			maxRegs = f.RegsUsed
		}
	}
	p.StaticRegsPerWarp = maxRegs
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("binfmt: image decodes to invalid program: %w", err)
	}
	return p, nil
}

// --- encoding helpers ---

func putString(b *bytes.Buffer, s string) {
	binary.Write(b, binary.LittleEndian, uint32(len(s)))
	b.WriteString(s)
}

func getString(r *bytes.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 4096 {
		return "", fmt.Errorf("binfmt: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// encodeInstr packs one instruction into 16 bytes:
//
//	word0: op | dst | srcA | srcB
//	word1: srcC | pdst | pred | (pneg|spill|cmp|sreg packed byte)
//	word2: imm (or callee for calls, target for branches)
//	word3: target2 | fru  (16 bits each)
func encodeInstr(b *bytes.Buffer, in *isa.Instruction) error {
	if in.Target2 > 0xFFFF || in.FRU > 0xFFFF || in.Target > 1<<30 || in.Callee > 1<<30 {
		return fmt.Errorf("binfmt: instruction field overflow: %+v", *in)
	}
	var meta uint8
	if in.PNeg {
		meta |= 1 << 0
	}
	if in.Spill {
		meta |= 1 << 1
	}
	meta |= uint8(in.Cmp) << 2 // 3 bits
	meta |= uint8(in.Sreg) << 5

	b.WriteByte(uint8(in.Op))
	b.WriteByte(in.Dst)
	b.WriteByte(in.SrcA)
	b.WriteByte(in.SrcB)
	b.WriteByte(in.SrcC)
	b.WriteByte(in.PDst)
	b.WriteByte(in.Pred)
	b.WriteByte(meta)
	word2 := uint32(in.Imm)
	switch in.Op {
	case isa.OpCall:
		word2 = uint32(in.Callee)
	case isa.OpBra, isa.OpSSY:
		word2 = uint32(in.Target)
	}
	binary.Write(b, binary.LittleEndian, word2)
	binary.Write(b, binary.LittleEndian, uint16(in.Target2))
	binary.Write(b, binary.LittleEndian, uint16(in.FRU))
	return nil
}

func decodeInstr(raw []byte) isa.Instruction {
	in := isa.Instruction{
		Op:   isa.Op(raw[0]),
		Dst:  raw[1],
		SrcA: raw[2],
		SrcB: raw[3],
		SrcC: raw[4],
		PDst: raw[5],
		Pred: raw[6],
	}
	meta := raw[7]
	in.PNeg = meta&1 != 0
	in.Spill = meta&2 != 0
	in.Cmp = isa.CmpKind(meta >> 2 & 0x7)
	in.Sreg = isa.Special(meta >> 5)
	word2 := binary.LittleEndian.Uint32(raw[8:12])
	switch in.Op {
	case isa.OpCall:
		in.Callee = int(word2)
	case isa.OpBra, isa.OpSSY:
		in.Target = int(word2)
	case isa.OpCallI:
		in.Callee = -1
	default:
		in.Imm = int32(word2)
	}
	in.Target2 = int(binary.LittleEndian.Uint16(raw[12:14]))
	in.FRU = int(binary.LittleEndian.Uint16(raw[14:16]))
	return in
}

func encodeCode(p *isa.Program) []byte {
	var b bytes.Buffer
	binary.Write(&b, binary.LittleEndian, uint32(len(p.Funcs)))
	for _, f := range p.Funcs {
		binary.Write(&b, binary.LittleEndian, uint32(len(f.Code)))
		for i := range f.Code {
			if err := encodeInstr(&b, &f.Code[i]); err != nil {
				panic(err) // Validate()d programs cannot overflow
			}
		}
	}
	return b.Bytes()
}

func decodeCode(raw []byte, p *isa.Program) error {
	r := bytes.NewReader(raw)
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return fmt.Errorf("binfmt: code section: %w", err)
	}
	if int(n) != len(p.Funcs) {
		return fmt.Errorf("binfmt: code has %d functions, symtab %d", n, len(p.Funcs))
	}
	buf := make([]byte, instrWords*4)
	for _, f := range p.Funcs {
		var ninstr uint32
		if err := binary.Read(r, binary.LittleEndian, &ninstr); err != nil {
			return err
		}
		if ninstr > 1<<20 {
			return fmt.Errorf("binfmt: implausible code size %d", ninstr)
		}
		f.Code = make([]isa.Instruction, ninstr)
		for i := range f.Code {
			if _, err := io.ReadFull(r, buf); err != nil {
				return err
			}
			f.Code[i] = decodeInstr(buf)
		}
	}
	return nil
}

func encodeSymtab(p *isa.Program) []byte {
	var b bytes.Buffer
	binary.Write(&b, binary.LittleEndian, uint32(len(p.Funcs)))
	for _, f := range p.Funcs {
		putString(&b, f.Name)
		var kind uint8
		if f.IsKernel {
			kind = 1
		}
		b.WriteByte(kind)
		binary.Write(&b, binary.LittleEndian, uint16(f.RegsUsed))
		binary.Write(&b, binary.LittleEndian, uint16(f.CalleeSaved))
		binary.Write(&b, binary.LittleEndian, uint32(f.LocalFrameBytes))
	}
	return b.Bytes()
}

func decodeSymtab(raw []byte, p *isa.Program) error {
	r := bytes.NewReader(raw)
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return fmt.Errorf("binfmt: symtab: %w", err)
	}
	if n > 1<<16 {
		return fmt.Errorf("binfmt: implausible function count %d", n)
	}
	for i := uint32(0); i < n; i++ {
		name, err := getString(r)
		if err != nil {
			return err
		}
		kind, err := r.ReadByte()
		if err != nil {
			return err
		}
		var regs, saved uint16
		var frame uint32
		if err := binary.Read(r, binary.LittleEndian, &regs); err != nil {
			return err
		}
		if err := binary.Read(r, binary.LittleEndian, &saved); err != nil {
			return err
		}
		if err := binary.Read(r, binary.LittleEndian, &frame); err != nil {
			return err
		}
		p.Funcs = append(p.Funcs, &isa.Function{
			Name:            name,
			IsKernel:        kind == 1,
			RegsUsed:        int(regs),
			CalleeSaved:     int(saved),
			LocalFrameBytes: int(frame),
		})
	}
	return nil
}

func encodeKernels(p *isa.Program) []byte {
	var b bytes.Buffer
	binary.Write(&b, binary.LittleEndian, uint32(len(p.Kernels)))
	for name, idx := range p.Kernels {
		putString(&b, name)
		binary.Write(&b, binary.LittleEndian, uint32(idx))
	}
	return b.Bytes()
}

func decodeKernels(raw []byte, p *isa.Program) error {
	r := bytes.NewReader(raw)
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return fmt.Errorf("binfmt: kernels: %w", err)
	}
	for i := uint32(0); i < n; i++ {
		name, err := getString(r)
		if err != nil {
			return err
		}
		var idx uint32
		if err := binary.Read(r, binary.LittleEndian, &idx); err != nil {
			return err
		}
		p.Kernels[name] = int(idx)
	}
	return nil
}

// encodeReloc stores per-function call metadata the ELF symbol table
// alone cannot express: resolved direct callees and indirect candidate
// sets (what nvlink's -dump-callgraph provides, §V-C).
func encodeReloc(p *isa.Program) []byte {
	var b bytes.Buffer
	binary.Write(&b, binary.LittleEndian, uint32(len(p.Funcs)))
	for _, f := range p.Funcs {
		binary.Write(&b, binary.LittleEndian, uint32(len(f.Callees)))
		for _, c := range f.Callees {
			binary.Write(&b, binary.LittleEndian, uint32(c))
		}
		binary.Write(&b, binary.LittleEndian, uint32(len(f.IndirectTargets)))
		for _, cands := range f.IndirectTargets {
			binary.Write(&b, binary.LittleEndian, uint32(len(cands)))
			for _, c := range cands {
				binary.Write(&b, binary.LittleEndian, uint32(c))
			}
		}
	}
	return b.Bytes()
}

func decodeReloc(raw []byte, p *isa.Program) error {
	r := bytes.NewReader(raw)
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return fmt.Errorf("binfmt: reloc: %w", err)
	}
	if int(n) != len(p.Funcs) {
		return fmt.Errorf("binfmt: reloc count mismatch")
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	for _, f := range p.Funcs {
		nc, err := readU32()
		if err != nil {
			return err
		}
		if nc > 1<<16 {
			return fmt.Errorf("binfmt: implausible callee count")
		}
		for i := uint32(0); i < nc; i++ {
			c, err := readU32()
			if err != nil {
				return err
			}
			f.Callees = append(f.Callees, int(c))
		}
		ni, err := readU32()
		if err != nil {
			return err
		}
		if ni > 1<<16 {
			return fmt.Errorf("binfmt: implausible indirect count")
		}
		for i := uint32(0); i < ni; i++ {
			ncand, err := readU32()
			if err != nil {
				return err
			}
			if ncand > 1<<12 {
				return fmt.Errorf("binfmt: implausible candidate count")
			}
			var cands []int
			for j := uint32(0); j < ncand; j++ {
				c, err := readU32()
				if err != nil {
					return err
				}
				cands = append(cands, int(c))
			}
			f.IndirectTargets = append(f.IndirectTargets, cands)
		}
	}
	return nil
}
