package isa

import (
	"fmt"
	"strings"
)

// Function is a compiled device function or kernel entry point.
type Function struct {
	Name string
	Code []Instruction

	// IsKernel marks __global__ entry points.
	IsKernel bool

	// RegsUsed is the number of architectural registers the function
	// body uses (max register index + 1), before any stack accounting.
	RegsUsed int

	// CalleeSaved is the number of callee-saved registers the function
	// preserves. They are the contiguous set R16..R16+CalleeSaved-1.
	// This is the function's FRU (Function Register Usage) in the paper:
	// the additional register-stack space a call to it demands.
	CalleeSaved int

	// LocalFrameBytes is the per-thread local-memory frame the baseline
	// ABI reserves for this function's spill slots and locals.
	LocalFrameBytes int

	// Callees lists the function indices of direct call targets after
	// linking (one entry per call site, in code order).
	Callees []int

	// IndirectTargets lists, per indirect call site, the set of possible
	// function indices (from the static analysis of the call point).
	IndirectTargets [][]int
}

// FRU returns the function register usage: the extra register-stack slots
// a call to this function consumes under CARS. It counts the callee-saved
// registers the function pushes plus one slot for the saved RFP, which
// every call consumes (the PUSHRFP micro-op precedes every call, §IV-A),
// so even a function that saves nothing has an FRU of one.
func (f *Function) FRU() int {
	return f.CalleeSaved + 1
}

// Disassemble renders the function's code with instruction indices.
func (f *Function) Disassemble() string {
	var b strings.Builder
	kind := "func"
	if f.IsKernel {
		kind = "kernel"
	}
	fmt.Fprintf(&b, "%s %s (regs=%d callee-saved=%d frame=%dB):\n",
		kind, f.Name, f.RegsUsed, f.CalleeSaved, f.LocalFrameBytes)
	for i := range f.Code {
		fmt.Fprintf(&b, "  %4d: %s\n", i, f.Code[i].String())
	}
	return b.String()
}

// Program is a linked executable: a set of functions with resolved call
// targets, entry kernels, and link-time metadata the hardware consumes.
type Program struct {
	Funcs []*Function

	// Kernels maps kernel name to function index.
	Kernels map[string]int

	// StaticRegsPerWarp is the worst-case per-thread register count the
	// baseline linker computes across the call graph (§II): the register
	// allocation each warp receives on the baseline machine.
	StaticRegsPerWarp int

	// CARS reports whether the program was compiled with CARS push/pop
	// micro-ops instead of baseline LDL/STL spills.
	CARS bool

	// SmemSpillPerThread is the per-thread shared-memory spill frame in
	// bytes for programs compiled with the SharedSpill ABI (a CRAT-like
	// comparator: spills go to shared memory instead of the L1D). Zero
	// for other modes. The simulator reserves blockThreads times this
	// much extra shared memory per block — the occupancy cost of the
	// scheme — and initialises each thread's R0 as its spill pointer.
	SmemSpillPerThread int
}

// Kernel returns the function index for a named kernel.
func (p *Program) Kernel(name string) (int, error) {
	idx, ok := p.Kernels[name]
	if !ok {
		return 0, fmt.Errorf("isa: kernel %q not found", name)
	}
	return idx, nil
}

// FuncByName returns the function with the given name, or nil.
func (p *Program) FuncByName(name string) *Function {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Validate checks structural invariants of the linked program: call
// targets in range, branch targets within the function, register
// operands below the function's declared usage, and the per-site call
// metadata (Callees, IndirectTargets) consistent with the code and in
// range — indirect targets outside the program would otherwise only
// surface as a fault when the simulator resolves the call.
func (p *Program) Validate() error {
	for fi, f := range p.Funcs {
		calls, indirects := 0, 0
		for ii := range f.Code {
			in := &f.Code[ii]
			switch in.Op {
			case OpCall:
				if in.Callee < 0 || in.Callee >= len(p.Funcs) {
					return fmt.Errorf("isa: %s[%d]: call target %d out of range", f.Name, ii, in.Callee)
				}
				calls++
			case OpCallI:
				indirects++
			}
			if in.Op == OpBra {
				if t := in.Target; t < 0 || t > len(f.Code) {
					return fmt.Errorf("isa: %s[%d]: branch target %d out of range", f.Name, ii, t)
				}
				if in.Pred != NoPred &&
					(in.Target2 < 0 || in.Target2 > len(f.Code)) {
					return fmt.Errorf("isa: %s[%d]: reconvergence target %d out of range", f.Name, ii, in.Target2)
				}
			}
			if in.Op == OpSSY {
				// Unlike BRA, an SSY reconvergence point one past the end
				// of the function would leave the SIMT stack holding a PC
				// that never executes: require a real instruction index.
				if t := in.Target2; t < 0 || t >= len(f.Code) {
					return fmt.Errorf("isa: %s[%d]: SSY reconvergence target %d out of range", f.Name, ii, t)
				}
			}
			if in.Op == OpBar && in.Pred != NoPred {
				// A guarded BAR.SYNC means predicated-off lanes skip the
				// barrier their warp arrives at: reject it outright.
				return fmt.Errorf("isa: %s[%d]: BAR.SYNC must not carry a guard predicate", f.Name, ii)
			}
			for _, r := range in.Reads(nil) {
				if int(r) >= MaxArchRegs {
					return fmt.Errorf("isa: %s[%d]: register R%d exceeds limit", f.Name, ii, r)
				}
			}
			if in.Dst != NoReg && int(in.Dst) >= MaxArchRegs {
				return fmt.Errorf("isa: %s[%d]: dest register R%d exceeds limit", f.Name, ii, in.Dst)
			}
		}
		if len(f.Callees) != calls {
			return fmt.Errorf("isa: %s: %d direct call sites but %d callee entries", f.Name, calls, len(f.Callees))
		}
		for si, ti := range f.Callees {
			if ti < 0 || ti >= len(p.Funcs) {
				return fmt.Errorf("isa: %s: callee entry %d targets function %d, out of range", f.Name, si, ti)
			}
		}
		if len(f.IndirectTargets) != indirects {
			return fmt.Errorf("isa: %s: %d indirect call sites but %d candidate sets", f.Name, indirects, len(f.IndirectTargets))
		}
		for si, cands := range f.IndirectTargets {
			for _, ti := range cands {
				if ti < 0 || ti >= len(p.Funcs) {
					return fmt.Errorf("isa: %s: indirect candidate set %d targets function %d, out of range", f.Name, si, ti)
				}
			}
		}
		if f.RegsUsed > MaxArchRegs {
			return fmt.Errorf("isa: func %d (%s) uses %d regs > %d", fi, f.Name, f.RegsUsed, MaxArchRegs)
		}
	}
	for name, idx := range p.Kernels {
		if idx < 0 || idx >= len(p.Funcs) {
			return fmt.Errorf("isa: kernel %q index %d out of range", name, idx)
		}
		if !p.Funcs[idx].IsKernel {
			return fmt.Errorf("isa: kernel %q maps to non-kernel function %s", name, p.Funcs[idx].Name)
		}
	}
	return nil
}

// Dim3 is a CUDA-style 1-D launch dimension pair. The simulator flattens
// grids and blocks to one dimension; multi-dimensional kernels index
// through arithmetic, as real SASS does.
type Dim3 struct {
	Grid  int // blocks per grid
	Block int // threads per block
}

// Warps returns warps per block, rounding up to whole warps.
func (d Dim3) Warps() int { return (d.Block + WarpSize - 1) / WarpSize }

// Launch describes one kernel launch.
type Launch struct {
	Kernel      string
	Dim         Dim3
	SharedBytes int // dynamic shared memory per block

	// Params are kernel parameters, deposited in R4.. of every thread
	// at block start (modelling the constant-bank parameter load).
	Params []uint32
}
