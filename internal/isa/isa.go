// Package isa defines a SASS-like instruction set for the simulated GPU.
//
// The ISA is deliberately close to the machine model the paper assumes:
// a warp-wide SIMT machine with up to 256 architectural registers per
// thread, predicate registers, direct and indirect function calls, and
// explicit local-memory spill/fill instructions (LDL/STL) that the
// baseline ABI uses to preserve callee-saved registers. CARS replaces
// those spills/fills with PUSH/POP renaming micro-ops (see internal/cars).
package isa

import "fmt"

// WarpSize is the number of threads per warp, matching NVIDIA hardware.
const WarpSize = 32

// MaxBlockThreads is the architectural limit on threads per block
// (CUDA's 1024). The launch validator enforces it; the static race
// analysis in internal/vet relies on it to bound lane and warp indices
// when reasoning about affine shared-memory addresses.
const MaxBlockThreads = 1024

// MaxArchRegs is the architectural register limit per function. The paper
// notes 8 bits encode register identifiers, capping any function at 256.
const MaxArchRegs = 256

// FirstCalleeSaved is the first callee-saved architectural register.
// Profiling in the paper (§II) shows contemporary NVIDIA ABIs allocate
// callee-saved registers contiguously starting at R16; CARS' renaming
// rule depends on this contiguity.
const FirstCalleeSaved = 16

// Op enumerates instruction opcodes.
type Op uint8

// Opcode space. Arithmetic ops operate on 32-bit lanes; FP ops reinterpret
// lanes as float32. Memory ops address byte-granular spaces.
const (
	OpNop Op = iota

	// Integer ALU.
	OpIAdd // Dst = SrcA + SrcB
	OpISub // Dst = SrcA - SrcB
	OpIMul // Dst = SrcA * SrcB
	OpIMad // Dst = SrcA * SrcB + SrcC
	OpIMin // Dst = min(SrcA, SrcB) (signed)
	OpIMax // Dst = max(SrcA, SrcB) (signed)
	OpAnd  // Dst = SrcA & SrcB
	OpOr   // Dst = SrcA | SrcB
	OpXor  // Dst = SrcA ^ SrcB
	OpShl  // Dst = SrcA << (SrcB & 31)
	OpShr  // Dst = SrcA >> (SrcB & 31) (logical)
	OpMov  // Dst = SrcA
	OpMovI // Dst = Imm
	OpSel  // Dst = Pred ? SrcA : SrcB

	// Floating point (float32 lanes).
	OpFAdd // Dst = SrcA + SrcB
	OpFMul // Dst = SrcA * SrcB
	OpFFma // Dst = SrcA*SrcB + SrcC
	OpFRcp // Dst = 1/SrcA (SFU)
	OpFSqr // Dst = sqrt(SrcA) (SFU)

	// Predicate setting: PDst = SrcA <cmp> SrcB.
	OpSetP

	// Special registers: Dst = special (thread id, block id, ...).
	OpS2R

	// Memory. Addresses are per-lane byte addresses in Src A (+Imm offset).
	OpLdG // global load:  Dst = [SrcA + Imm]
	OpStG // global store: [SrcA + Imm] = SrcC
	OpLdL // local load (fills in the baseline ABI)
	OpStL // local store (spills in the baseline ABI)
	OpLdS // shared load
	OpStS // shared store

	// Control flow. Structured divergence: OpBra with a predicate pushes
	// a SIMT entry whose reconvergence point is Target2 (the ENDIF).
	OpBra  // unconditional or predicated branch to Target
	OpSSY  // push reconvergence point Target (structured divergence)
	OpSync // pop/reconverge at the innermost SSY point
	OpBar  // block-wide barrier
	OpExit // thread exit

	// Function calls.
	OpCall  // direct call to Callee
	OpCallI // indirect call; SrcA holds a function index
	OpRet   // return to caller

	// CARS micro-ops (emitted instead of LDL/STL spills when CARS compiles
	// the program). On a baseline machine these are invalid.
	OpPushRFP // push caller's RFP onto the register stack (before CALL)
	OpPush    // allocate+rename N callee-saved registers (Imm = count)
	OpPop     // release N renamed registers (Imm = count)
)

var opNames = map[Op]string{
	OpNop: "NOP", OpIAdd: "IADD", OpISub: "ISUB", OpIMul: "IMUL",
	OpIMad: "IMAD", OpIMin: "IMIN", OpIMax: "IMAX", OpAnd: "AND",
	OpOr: "OR", OpXor: "XOR", OpShl: "SHL", OpShr: "SHR", OpMov: "MOV",
	OpMovI: "MOVI", OpSel: "SEL", OpFAdd: "FADD", OpFMul: "FMUL",
	OpFFma: "FFMA", OpFRcp: "FRCP", OpFSqr: "FSQRT", OpSetP: "SETP",
	OpS2R: "S2R", OpLdG: "LDG", OpStG: "STG", OpLdL: "LDL", OpStL: "STL",
	OpLdS: "LDS", OpStS: "STS", OpBra: "BRA", OpSSY: "SSY", OpSync: "SYNC",
	OpBar: "BAR.SYNC", OpExit: "EXIT", OpCall: "CALL", OpCallI: "CALLI",
	OpRet: "RET", OpPushRFP: "PUSHRFP", OpPush: "PUSH", OpPop: "POP",
}

// String returns the SASS-style mnemonic for the opcode.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// IsMemory reports whether the opcode accesses the memory hierarchy.
func (o Op) IsMemory() bool {
	switch o {
	case OpLdG, OpStG, OpLdL, OpStL, OpLdS, OpStS:
		return true
	}
	return false
}

// IsLocal reports whether the opcode is a local-memory access.
func (o Op) IsLocal() bool { return o == OpLdL || o == OpStL }

// IsGlobal reports whether the opcode is a global-memory access.
func (o Op) IsGlobal() bool { return o == OpLdG || o == OpStG }

// IsLoad reports whether the opcode reads memory.
func (o Op) IsLoad() bool { return o == OpLdG || o == OpLdL || o == OpLdS }

// IsStore reports whether the opcode writes memory.
func (o Op) IsStore() bool { return o == OpStG || o == OpStL || o == OpStS }

// IsControl reports whether the opcode can change control flow.
func (o Op) IsControl() bool {
	switch o {
	case OpBra, OpSSY, OpSync, OpExit, OpCall, OpCallI, OpRet:
		return true
	}
	return false
}

// IsCall reports whether the opcode transfers control into a function.
func (o Op) IsCall() bool { return o == OpCall || o == OpCallI }

// IsCARSOp reports whether the opcode is a CARS stack micro-op.
func (o Op) IsCARSOp() bool {
	return o == OpPushRFP || o == OpPush || o == OpPop
}

// IsSFU reports whether the opcode executes on the special-function unit.
func (o Op) IsSFU() bool { return o == OpFRcp || o == OpFSqr }

// CmpKind selects the comparison performed by OpSetP.
type CmpKind uint8

// Comparison kinds for SETP (signed integer comparison).
const (
	CmpEQ CmpKind = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (c CmpKind) String() string {
	switch c {
	case CmpEQ:
		return "EQ"
	case CmpNE:
		return "NE"
	case CmpLT:
		return "LT"
	case CmpLE:
		return "LE"
	case CmpGT:
		return "GT"
	case CmpGE:
		return "GE"
	}
	return "?"
}

// Eval applies the comparison to signed 32-bit operands.
func (c CmpKind) Eval(a, b uint32) bool {
	sa, sb := int32(a), int32(b)
	switch c {
	case CmpEQ:
		return sa == sb
	case CmpNE:
		return sa != sb
	case CmpLT:
		return sa < sb
	case CmpLE:
		return sa <= sb
	case CmpGT:
		return sa > sb
	case CmpGE:
		return sa >= sb
	}
	return false
}

// Special enumerates special registers read by OpS2R.
type Special uint8

// Special register identifiers.
const (
	SrLaneID Special = iota // lane index within the warp [0,32)
	SrTID                   // thread index within the block
	SrCTAID                 // block index within the grid
	SrNTID                  // threads per block
	SrNCTAID                // blocks per grid
	SrWarpID                // warp index within the block
)

func (s Special) String() string {
	switch s {
	case SrLaneID:
		return "SR_LANEID"
	case SrTID:
		return "SR_TID"
	case SrCTAID:
		return "SR_CTAID"
	case SrNTID:
		return "SR_NTID"
	case SrNCTAID:
		return "SR_NCTAID"
	case SrWarpID:
		return "SR_WARPID"
	}
	return "SR_?"
}

// NoReg marks an unused register operand.
const NoReg = 0xFF

// NoPred marks an unused predicate operand.
const NoPred = 0xFF

// Instruction is one machine instruction. Contemporary GPU instructions
// are wide (16B on Volta/Hopper); this struct mirrors that flavour with
// explicit operand fields rather than packed encodings.
type Instruction struct {
	Op   Op
	Dst  uint8 // destination register (NoReg if none)
	SrcA uint8 // source register A (NoReg if none)
	SrcB uint8 // source register B (NoReg if none)
	SrcC uint8 // source register C (store data / FMA addend)
	PDst uint8 // destination predicate (SETP)
	Pred uint8 // guard predicate (NoPred = always)
	PNeg bool  // negate guard predicate

	Imm int32 // immediate: MOVI value, memory offset, PUSH/POP count

	Cmp     CmpKind // comparison for SETP
	Sreg    Special // special register for S2R
	Target  int     // branch target (instruction index within function)
	Target2 int     // reconvergence point for predicated BRA / SSY

	// Callee is the linked function index for OpCall. For OpCallI it is
	// -1 and SrcA supplies the function index at run time.
	Callee int

	// FRU is the callee's Function Register Usage, embedded by the linker
	// into call and return instructions (§IV-A) so the hardware knows the
	// frame size before the function executes.
	FRU int

	// Spill marks LDL/STL instructions inserted by the ABI to preserve
	// callee-saved registers, distinguishing spill/fill traffic from
	// "other local" accesses in the paper's breakdowns (Figs. 2, 9).
	Spill bool
}

// Reads returns the architectural registers this instruction reads.
// The result slice is appended to buf to avoid allocation in hot paths.
func (in *Instruction) Reads(buf []uint8) []uint8 {
	if in.SrcA != NoReg {
		buf = append(buf, in.SrcA)
	}
	if in.SrcB != NoReg {
		buf = append(buf, in.SrcB)
	}
	if in.SrcC != NoReg {
		buf = append(buf, in.SrcC)
	}
	return buf
}

// WritesReg reports whether the instruction writes a destination register.
func (in *Instruction) WritesReg() bool { return in.Dst != NoReg }

// String disassembles the instruction.
func (in *Instruction) String() string {
	s := ""
	if in.Pred != NoPred {
		neg := ""
		if in.PNeg {
			neg = "!"
		}
		s = fmt.Sprintf("@%sP%d ", neg, in.Pred)
	}
	s += in.Op.String()
	switch in.Op {
	case OpMovI:
		s += fmt.Sprintf(" R%d, %d", in.Dst, in.Imm)
	case OpS2R:
		s += fmt.Sprintf(" R%d, %s", in.Dst, in.Sreg)
	case OpSetP:
		s += fmt.Sprintf(".%s P%d, R%d, R%d", in.Cmp, in.PDst, in.SrcA, in.SrcB)
	case OpLdG, OpLdL, OpLdS:
		s += fmt.Sprintf(" R%d, [R%d+%d]", in.Dst, in.SrcA, in.Imm)
	case OpStG, OpStL, OpStS:
		s += fmt.Sprintf(" [R%d+%d], R%d", in.SrcA, in.Imm, in.SrcC)
	case OpBra:
		s += fmt.Sprintf(" %d", in.Target)
	case OpSSY:
		s += fmt.Sprintf(" %d", in.Target2)
	case OpCall:
		s += fmt.Sprintf(" F%d (FRU=%d)", in.Callee, in.FRU)
	case OpCallI:
		s += fmt.Sprintf(" [R%d] (FRU=%d)", in.SrcA, in.FRU)
	case OpRet:
		s += fmt.Sprintf(" (FRU=%d)", in.FRU)
	case OpPush, OpPop:
		s += fmt.Sprintf(" %d", in.Imm)
	default:
		if in.Dst != NoReg {
			s += fmt.Sprintf(" R%d", in.Dst)
			if in.SrcA != NoReg {
				s += fmt.Sprintf(", R%d", in.SrcA)
			}
			if in.SrcB != NoReg {
				s += fmt.Sprintf(", R%d", in.SrcB)
			}
			if in.SrcC != NoReg {
				s += fmt.Sprintf(", R%d", in.SrcC)
			}
		}
	}
	return s
}
