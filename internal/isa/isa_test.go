package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpPredicates(t *testing.T) {
	cases := []struct {
		op                              Op
		mem, local, global, load, store bool
		control, call, carsOp, sfu      bool
	}{
		{op: OpIAdd},
		{op: OpLdG, mem: true, global: true, load: true},
		{op: OpStG, mem: true, global: true, store: true},
		{op: OpLdL, mem: true, local: true, load: true},
		{op: OpStL, mem: true, local: true, store: true},
		{op: OpLdS, mem: true, load: true},
		{op: OpStS, mem: true, store: true},
		{op: OpBra, control: true},
		{op: OpCall, control: true, call: true},
		{op: OpCallI, control: true, call: true},
		{op: OpRet, control: true},
		{op: OpExit, control: true},
		{op: OpPush, carsOp: true},
		{op: OpPop, carsOp: true},
		{op: OpPushRFP, carsOp: true},
		{op: OpFRcp, sfu: true},
		{op: OpFSqr, sfu: true},
	}
	for _, c := range cases {
		if got := c.op.IsMemory(); got != c.mem {
			t.Errorf("%s.IsMemory() = %v", c.op, got)
		}
		if got := c.op.IsLocal(); got != c.local {
			t.Errorf("%s.IsLocal() = %v", c.op, got)
		}
		if got := c.op.IsGlobal(); got != c.global {
			t.Errorf("%s.IsGlobal() = %v", c.op, got)
		}
		if got := c.op.IsLoad(); got != c.load {
			t.Errorf("%s.IsLoad() = %v", c.op, got)
		}
		if got := c.op.IsStore(); got != c.store {
			t.Errorf("%s.IsStore() = %v", c.op, got)
		}
		if got := c.op.IsControl(); got != c.control {
			t.Errorf("%s.IsControl() = %v", c.op, got)
		}
		if got := c.op.IsCall(); got != c.call {
			t.Errorf("%s.IsCall() = %v", c.op, got)
		}
		if got := c.op.IsCARSOp(); got != c.carsOp {
			t.Errorf("%s.IsCARSOp() = %v", c.op, got)
		}
		if got := c.op.IsSFU(); got != c.sfu {
			t.Errorf("%s.IsSFU() = %v", c.op, got)
		}
	}
}

func TestOpStringsDistinct(t *testing.T) {
	seen := map[string]Op{}
	for op := OpNop; op <= OpPop; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "OP(") {
			t.Errorf("op %d has no mnemonic", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("ops %d and %d share mnemonic %q", prev, op, s)
		}
		seen[s] = op
	}
}

func TestCmpEval(t *testing.T) {
	cases := []struct {
		cmp  CmpKind
		a, b int32
		want bool
	}{
		{CmpEQ, 3, 3, true}, {CmpEQ, 3, 4, false},
		{CmpNE, 3, 4, true}, {CmpNE, 4, 4, false},
		{CmpLT, -1, 0, true}, {CmpLT, 0, -1, false},
		{CmpLE, 2, 2, true}, {CmpLE, 3, 2, false},
		{CmpGT, 0, -1, true}, {CmpGT, -1, 0, false},
		{CmpGE, -5, -5, true}, {CmpGE, -6, -5, false},
	}
	for _, c := range cases {
		if got := c.cmp.Eval(uint32(c.a), uint32(c.b)); got != c.want {
			t.Errorf("%v.Eval(%d,%d) = %v, want %v", c.cmp, c.a, c.b, got, c.want)
		}
	}
}

// Property: comparisons are mutually consistent on arbitrary inputs.
func TestCmpConsistencyProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		eq := CmpEQ.Eval(a, b)
		ne := CmpNE.Eval(a, b)
		lt := CmpLT.Eval(a, b)
		le := CmpLE.Eval(a, b)
		gt := CmpGT.Eval(a, b)
		ge := CmpGE.Eval(a, b)
		if eq == ne {
			return false
		}
		if le != (lt || eq) || ge != (gt || eq) {
			return false
		}
		// exactly one of lt, eq, gt
		n := 0
		for _, v := range []bool{lt, eq, gt} {
			if v {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstructionReads(t *testing.T) {
	in := Instruction{Op: OpIMad, Dst: 5, SrcA: 1, SrcB: 2, SrcC: 3, Pred: NoPred}
	if got := in.Reads(nil); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Reads = %v", got)
	}
	in2 := Instruction{Op: OpMovI, Dst: 5, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg}
	if got := in2.Reads(nil); len(got) != 0 {
		t.Errorf("MovI Reads = %v", got)
	}
	if !in.WritesReg() {
		t.Error("IMad should write a register")
	}
}

func TestFunctionFRU(t *testing.T) {
	f := &Function{CalleeSaved: 0}
	if got := f.FRU(); got != 1 {
		t.Errorf("FRU with no saved regs = %d, want 1 (saved-RFP slot)", got)
	}
	f.CalleeSaved = 3
	if got := f.FRU(); got != 4 {
		t.Errorf("FRU = %d, want callee-saved+1 = 4", got)
	}
}

func TestProgramValidate(t *testing.T) {
	mk := func() *Program {
		return &Program{
			Funcs: []*Function{
				{Name: "k", IsKernel: true, RegsUsed: 8, Callees: []int{1}, Code: []Instruction{
					{Op: OpCall, Callee: 1, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg},
					{Op: OpExit, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg},
				}},
				{Name: "f", RegsUsed: 8, Code: []Instruction{
					{Op: OpRet, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg},
				}},
			},
			Kernels: map[string]int{"k": 0},
		}
	}
	if err := mk().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	p := mk()
	p.Funcs[0].Code[0].Callee = 7
	if err := p.Validate(); err == nil {
		t.Error("out-of-range call target accepted")
	}
	p = mk()
	p.Kernels["f"] = 1
	if err := p.Validate(); err == nil {
		t.Error("non-kernel registered as kernel accepted")
	}
	p = mk()
	p.Funcs[0].Code[0] = Instruction{Op: OpBra, Target: 99, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg}
	p.Funcs[0].Callees = nil
	if err := p.Validate(); err == nil {
		t.Error("out-of-range branch target accepted")
	}
	p = mk()
	p.Funcs[0].Callees = []int{9}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range callee entry accepted")
	}
	p = mk()
	p.Funcs[0].Callees = []int{1, 1}
	if err := p.Validate(); err == nil {
		t.Error("callee entry count mismatch accepted")
	}
	p = mk()
	p.Funcs[1].IndirectTargets = [][]int{{0, 1}}
	if err := p.Validate(); err == nil {
		t.Error("indirect candidate sets without CALLI sites accepted")
	}
	p = mk()
	p.Funcs[1].Code = []Instruction{
		{Op: OpCallI, Callee: -1, Dst: NoReg, SrcA: 8, SrcB: NoReg, SrcC: NoReg},
		{Op: OpRet, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg},
	}
	p.Funcs[1].IndirectTargets = [][]int{{99}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range indirect candidate accepted")
	}
	p = mk()
	p.Funcs[0].Code[0] = Instruction{Op: OpBra, Pred: 3, Target: 1, Target2: -2, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg}
	p.Funcs[0].Callees = nil
	if err := p.Validate(); err == nil {
		t.Error("out-of-range reconvergence target accepted")
	}
}

// TestValidateSyncOps covers the synchronization-op rules: SSY must
// reconverge at a real instruction index (unlike BRA, one-past-the-end
// is rejected) and BAR.SYNC must not carry a guard predicate.
func TestValidateSyncOps(t *testing.T) {
	mk := func(ins ...Instruction) *Program {
		code := append(ins, Instruction{Op: OpExit, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg})
		return &Program{
			Funcs:   []*Function{{Name: "k", IsKernel: true, RegsUsed: 8, Code: code}},
			Kernels: map[string]int{"k": 0},
		}
	}
	cases := []struct {
		name string
		in   Instruction
		ok   bool
	}{
		{
			name: "SSY to valid index",
			in:   Instruction{Op: OpSSY, Target2: 1, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg, Pred: NoPred},
			ok:   true,
		},
		{
			name: "SSY one past the end",
			in:   Instruction{Op: OpSSY, Target2: 2, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg, Pred: NoPred},
			ok:   false,
		},
		{
			name: "SSY far out of range",
			in:   Instruction{Op: OpSSY, Target2: 99, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg, Pred: NoPred},
			ok:   false,
		},
		{
			name: "SSY negative",
			in:   Instruction{Op: OpSSY, Target2: -1, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg, Pred: NoPred},
			ok:   false,
		},
		{
			name: "bare BAR",
			in:   Instruction{Op: OpBar, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg, Pred: NoPred},
			ok:   true,
		},
		{
			name: "predicated BAR",
			in:   Instruction{Op: OpBar, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg, Pred: 2},
			ok:   false,
		},
		{
			name: "negated-predicate BAR",
			in:   Instruction{Op: OpBar, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg, Pred: 5, PNeg: true},
			ok:   false,
		},
		{
			name: "BRA one past the end still allowed",
			in:   Instruction{Op: OpBra, Target: 2, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg, Pred: NoPred},
			ok:   true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := mk(tc.in).Validate()
			if tc.ok && err != nil {
				t.Errorf("valid program rejected: %v", err)
			}
			if !tc.ok && err == nil {
				t.Errorf("invalid instruction %s accepted", tc.in.String())
			}
		})
	}
}

func TestDim3Warps(t *testing.T) {
	for _, c := range []struct{ block, want int }{
		{1, 1}, {32, 1}, {33, 2}, {64, 2}, {255, 8}, {256, 8},
	} {
		if got := (Dim3{Grid: 1, Block: c.block}).Warps(); got != c.want {
			t.Errorf("Warps(%d) = %d, want %d", c.block, got, c.want)
		}
	}
}

func TestKernelLookup(t *testing.T) {
	p := &Program{Kernels: map[string]int{"main": 0}, Funcs: []*Function{{Name: "main", IsKernel: true}}}
	if _, err := p.Kernel("main"); err != nil {
		t.Error(err)
	}
	if _, err := p.Kernel("nope"); err == nil {
		t.Error("missing kernel lookup succeeded")
	}
	if f := p.FuncByName("main"); f == nil {
		t.Error("FuncByName failed")
	}
	if f := p.FuncByName("nope"); f != nil {
		t.Error("FuncByName found a ghost")
	}
}

func TestDisassembly(t *testing.T) {
	in := Instruction{Op: OpLdG, Dst: 7, SrcA: 4, SrcB: NoReg, SrcC: NoReg, Pred: NoPred, Imm: 16}
	if got := in.String(); got != "LDG R7, [R4+16]" {
		t.Errorf("disasm = %q", got)
	}
	in = Instruction{Op: OpSetP, PDst: 2, SrcA: 3, SrcB: 4, Dst: NoReg, SrcC: NoReg, Pred: NoPred, Cmp: CmpLT}
	if got := in.String(); got != "SETP.LT P2, R3, R4" {
		t.Errorf("disasm = %q", got)
	}
	in = Instruction{Op: OpIAdd, Dst: 1, SrcA: 2, SrcB: 3, SrcC: NoReg, Pred: 0, PNeg: true}
	if got := in.String(); !strings.HasPrefix(got, "@!P0 IADD") {
		t.Errorf("predicated disasm = %q", got)
	}
}

func TestDisassemblyAllForms(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: OpMovI, Dst: 4, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg, Pred: NoPred, Imm: -7}, "MOVI R4, -7"},
		{Instruction{Op: OpS2R, Dst: 8, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg, Pred: NoPred, Sreg: SrWarpID}, "S2R R8, SR_WARPID"},
		{Instruction{Op: OpStS, Dst: NoReg, SrcA: 4, SrcB: NoReg, SrcC: 9, Pred: NoPred, Imm: 8}, "STS [R4+8], R9"},
		{Instruction{Op: OpBra, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg, Pred: NoPred, Target: 12}, "BRA 12"},
		{Instruction{Op: OpSSY, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg, Pred: NoPred, Target2: 9}, "SSY 9"},
		{Instruction{Op: OpCall, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg, Pred: NoPred, Callee: 3, FRU: 5}, "CALL F3 (FRU=5)"},
		{Instruction{Op: OpCallI, Dst: NoReg, SrcA: 8, SrcB: NoReg, SrcC: NoReg, Pred: NoPred, Callee: -1, FRU: 4}, "CALLI [R8] (FRU=4)"},
		{Instruction{Op: OpRet, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg, Pred: NoPred, FRU: 2}, "RET (FRU=2)"},
		{Instruction{Op: OpPush, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg, Pred: NoPred, Imm: 3}, "PUSH 3"},
		{Instruction{Op: OpPop, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg, Pred: NoPred, Imm: 3}, "POP 3"},
		{Instruction{Op: OpIMad, Dst: 5, SrcA: 1, SrcB: 2, SrcC: 3, Pred: NoPred}, "IMAD R5, R1, R2, R3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm = %q, want %q", got, c.want)
		}
	}
}

func TestSpecialStrings(t *testing.T) {
	for s := SrLaneID; s <= SrWarpID; s++ {
		if s.String() == "SR_?" {
			t.Errorf("special %d unnamed", s)
		}
	}
	if Special(99).String() != "SR_?" {
		t.Error("unknown special not flagged")
	}
	if CmpKind(99).String() != "?" {
		t.Error("unknown cmp not flagged")
	}
	if CmpKind(99).Eval(1, 1) {
		t.Error("unknown cmp evaluates true")
	}
	if Op(200).String() == "" {
		t.Error("unknown op string empty")
	}
}

func TestFunctionDisassembleHeader(t *testing.T) {
	f := &Function{Name: "k", IsKernel: true, RegsUsed: 10, CalleeSaved: 0,
		Code: []Instruction{{Op: OpExit, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg, Pred: NoPred}}}
	s := f.Disassemble()
	if !strings.Contains(s, "kernel k") || !strings.Contains(s, "EXIT") {
		t.Errorf("disassembly header: %q", s)
	}
}
