package san

import "carsgo/internal/isa"

// Dynamic shared-memory race detector and barrier-divergence checker.
//
// The simulator releases a block's barrier only once every live warp
// has arrived, so "between two releases" is exactly one barrier
// interval: two accesses to the same shared word by distinct threads
// with no release between them are unordered, and if either writes
// they race. The detector keeps one access shadow per shared word per
// block — the last write plus the set of readers since the interval
// began — and clears it on every BarrierRelease (including the
// degenerate release when a warp exits past its waiting siblings).
//
// Races where either side is ABI spill traffic (the shared-spill
// mode's frames) are classified KindSpillRace: user STS/LDS reaching
// into spill frames is a real bug, but one the static analysis cannot
// always rule out (it depends on the launch-time SharedBytes), so the
// differential harness holds vet's RaceFree verdict only to the
// user-vs-user KindSharedRace events.

// accessRec is one remembered shared-memory access.
type accessRec struct {
	tid   int32 // thread index within the block
	fn    int32
	pc    int32
	spill bool
}

// wordShadow tracks one shared word within the current barrier interval.
type wordShadow struct {
	wrote bool
	write accessRec
	read  accessRec
	// readers distinguishes "no reads" (0), "one thread" (1), and
	// "several distinct threads" (2): a write conflicts with reads by
	// any other thread, so two is all the precision a report needs.
	readers uint8
}

// blockShadow is the shared-memory and barrier state of one block slot.
type blockShadow struct {
	words map[uint32]*wordShadow
	// barrierFn/barrierPC identify the first barrier arrived at in the
	// current round; siblings must present the same program point.
	barrierOpen bool
	barrierFn   int32
	barrierPC   int32
}

func (s *Sanitizer) resetBlock(blockID int) {
	b := s.blocks[blockID]
	if b == nil {
		s.blocks[blockID] = &blockShadow{words: make(map[uint32]*wordShadow)}
		return
	}
	for k := range b.words {
		delete(b.words, k)
	}
	b.barrierOpen = false
}

func (s *Sanitizer) blockShadowOf(blockID int) *blockShadow {
	b := s.blocks[blockID]
	if b == nil {
		b = &blockShadow{words: make(map[uint32]*wordShadow)}
		s.blocks[blockID] = b
	}
	return b
}

func raceKind(a, b bool) Kind {
	if a || b {
		return KindSpillRace
	}
	return KindSharedRace
}

func (s *Sanitizer) countRace(kernelFn int, kind Kind) {
	ko := s.kernelObs(kernelFn)
	if kind == KindSpillRace {
		ko.SpillRaces++
	} else {
		ko.SharedRaces++
	}
}

// SharedAccess checks one warp-wide LDS/STS against the block's access
// shadow and records it for the rest of the barrier interval.
func (s *Sanitizer) SharedAccess(gwid, blockID, fn, pc int, store, spill bool, lanes uint32, addrs *[isa.WarpSize]uint32, imm int32) {
	w := s.warps[gwid]
	if w == nil || lanes == 0 {
		return
	}
	fr := w.top()
	fr.sharedBytes += 4
	if o := s.funcObs(fr.fn); fr.sharedBytes > o.MaxSharedBytes {
		o.MaxSharedBytes = fr.sharedBytes
	}
	w.sharedBytes += 4
	if ko := s.kernelObs(w.kernelFn); w.sharedBytes > ko.MaxWarpSharedBytes {
		ko.MaxWarpSharedBytes = w.sharedBytes
	}
	b := s.blockShadowOf(blockID)
	for l := 0; l < isa.WarpSize; l++ {
		if lanes&(1<<l) == 0 {
			continue
		}
		tid := int32(w.wInBlock*isa.WarpSize + l)
		word := (addrs[l] + uint32(imm)) / 4
		ws := b.words[word]
		if ws == nil {
			ws = &wordShadow{}
			b.words[word] = ws
		}
		if store {
			if ws.wrote && ws.write.tid != tid {
				k := raceKind(spill, ws.write.spill)
				s.report(k, fn, pc,
					"%s STS by thread %d to shared word %d races with a store by thread %d at %s[%d] in the same barrier interval",
					userOrSpill(spill), tid, word, ws.write.tid, s.funcName(int(ws.write.fn)), ws.write.pc)
				s.countRace(w.kernelFn, k)
			}
			if ws.readers > 1 || (ws.readers == 1 && ws.read.tid != tid) {
				k := raceKind(spill, ws.read.spill)
				s.report(k, fn, pc,
					"%s STS by thread %d to shared word %d races with a load by thread %d at %s[%d] in the same barrier interval",
					userOrSpill(spill), tid, word, ws.read.tid, s.funcName(int(ws.read.fn)), ws.read.pc)
				s.countRace(w.kernelFn, k)
			}
			ws.wrote = true
			ws.write = accessRec{tid: tid, fn: int32(fn), pc: int32(pc), spill: spill}
			continue
		}
		if ws.wrote && ws.write.tid != tid {
			k := raceKind(spill, ws.write.spill)
			s.report(k, fn, pc,
				"%s LDS by thread %d from shared word %d races with a store by thread %d at %s[%d] in the same barrier interval",
				userOrSpill(spill), tid, word, ws.write.tid, s.funcName(int(ws.write.fn)), ws.write.pc)
			s.countRace(w.kernelFn, k)
		}
		switch {
		case ws.readers == 0:
			ws.readers = 1
			ws.read = accessRec{tid: tid, fn: int32(fn), pc: int32(pc), spill: spill}
		case ws.readers == 1 && ws.read.tid != tid:
			ws.readers = 2
		}
	}
}

func userOrSpill(spill bool) string {
	if spill {
		return "spill"
	}
	return "user"
}

// Barrier checks one warp's arrival at BAR.SYNC: the active mask must
// be the warp's launch-time mask (anything less means predicated-off
// or divergent lanes skip the barrier), and every warp of the block
// must wait at the same program point within a round.
func (s *Sanitizer) Barrier(gwid, blockID, fn, pc int, active uint32) {
	w := s.warps[gwid]
	if w == nil {
		return
	}
	if active != w.startMask {
		s.report(KindBarrierDivergence, fn, pc,
			"warp %d arrives at BAR.SYNC with partial mask %#08x (launched with %#08x): divergent lanes skip the barrier",
			gwid, active, w.startMask)
		s.kernelObs(w.kernelFn).BarrierDivergences++
	}
	b := s.blockShadowOf(blockID)
	if !b.barrierOpen {
		b.barrierOpen = true
		b.barrierFn, b.barrierPC = int32(fn), int32(pc)
		return
	}
	if b.barrierFn != int32(fn) || b.barrierPC != int32(pc) {
		s.report(KindBarrierDivergence, fn, pc,
			"warp %d waits at BAR.SYNC %s[%d] while a sibling waits at %s[%d]",
			gwid, s.funcName(fn), pc, s.funcName(int(b.barrierFn)), b.barrierPC)
		s.kernelObs(w.kernelFn).BarrierDivergences++
	}
}

// BarrierRelease ends the block's barrier interval: all shared-memory
// access history is ordered before everything that follows.
func (s *Sanitizer) BarrierRelease(blockID int) {
	b := s.blocks[blockID]
	if b == nil {
		return
	}
	for k := range b.words {
		delete(b.words, k)
	}
	b.barrierOpen = false
}
