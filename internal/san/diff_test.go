package san

import (
	"context"
	"io"
	"os"
	"strings"
	"testing"

	"carsgo/internal/abi"
	"carsgo/internal/asm"
	"carsgo/internal/config"
	"carsgo/internal/sim"
	"carsgo/internal/workloads"
)

// diffSubset keeps the in-test differential sweep fast; the full
// 22-workload sweep runs via `make san` / `carsvet -diff`.
// FIB exercises deep recursion (circular-stack trap spills and fills),
// GOL a call-heavy leaf chain, SSSP an irregular divergent workload.
var diffSubset = []string{"FIB", "GOL", "SSSP"}

// TestDiffWorkloads is the differential acceptance gate on a subset:
// the sanitizer must stay silent and every static vet bound must
// dominate the observed dynamic behaviour, in every linkable ABI mode.
func TestDiffWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy differential sweep")
	}
	results, ok, err := DiffWorkloads(context.Background(), diffSubset, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Skipped {
			continue
		}
		for _, d := range res.Diags {
			t.Errorf("%s/%s: sanitizer: %s", res.Workload, res.Mode, d)
		}
		for _, v := range res.Violations {
			t.Errorf("%s/%s: dominance: %s", res.Workload, res.Mode, v)
		}
	}
	if !ok && !t.Failed() {
		t.Error("DiffWorkloads reported failure without diagnostics")
	}
}

// TestDiffNegatives locks the negative side of the differential: the
// deliberately-racy and barrier-divergent workloads must be flagged by
// BOTH the static verifier and the sanitizer, and their clean twins by
// neither, in every ABI mode.
func TestDiffNegatives(t *testing.T) {
	results, ok, err := DiffNegatives(context.Background(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		for _, v := range res.Violations {
			t.Errorf("%s/%s: %s", res.Workload, res.Mode, v)
		}
		for _, d := range res.Diags {
			t.Errorf("%s/%s: sanitizer: %s", res.Workload, res.Mode, d)
		}
	}
	if !ok && !t.Failed() {
		t.Error("DiffNegatives reported failure without diagnostics")
	}
	if n := len(results); n != 4*len(abi.Modes) {
		t.Errorf("expected %d negative runs, got %d", 4*len(abi.Modes), n)
	}
}

// TestDiffTrapsExercised makes sure the dominance check is not
// vacuous: FIB's recursion must actually drive the circular-stack
// trap, so the sanitizer's spill/fill cross-checking really ran.
func TestDiffTrapsExercised(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	w, err := workloads.ByName("FIB")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWorkload(context.Background(), w, abi.CARS)
	if err != nil {
		t.Fatal(err)
	}
	var spills, fills uint64
	for _, ko := range res.Obs.Kernels {
		spills += ko.TrapSpillSlots
		fills += ko.TrapFillSlots
	}
	if spills == 0 || fills == 0 {
		t.Errorf("FIB/cars exercised no trap traffic (spills=%d fills=%d): the trap checks are vacuous", spills, fills)
	}
	if !res.OK() {
		t.Errorf("FIB/cars: %v %v", res.Diags, res.Violations)
	}
}

// runFile links an assembly file and runs it under the sanitizer with
// a smoke launch, without the vet gate (the point is to watch broken
// programs misbehave dynamically).
func runFile(t *testing.T, path string, mode abi.Mode) *Sanitizer {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := asm.ParseString(string(src))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := abi.Link(mode, mod)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ConfigFor(mode)
	cfg.GlobalMemWords = 1 << 16 // a smoke launch touches almost nothing
	g, err := sim.New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	s := New(prog)
	g.San = s
	launch, err := SmokeLaunch(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(launch); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestBrokenFlagged: the deliberately ABI-violating demo program must
// be caught dynamically by the sanitizer, in both the renamed (CARS)
// and physical (baseline) register models.
func TestBrokenFlagged(t *testing.T) {
	const path = "../../examples/vetdemo/broken.carsasm"
	for _, tc := range []struct {
		mode abi.Mode
		want []Kind
	}{
		// Under CARS the uninitialized R16 read hits a fresh renamed
		// slot and the R17 write lands outside the 1-register window.
		{abi.CARS, []Kind{KindUninitRead, KindABIClobber}},
		// Under the baseline ABI the R17 write physically clobbers the
		// caller's register, caught by the return snapshot.
		{abi.Baseline, []Kind{KindUninitRead, KindABIClobber}},
	} {
		s := runFile(t, path, tc.mode)
		diags := s.Diags()
		for _, want := range tc.want {
			found := false
			for _, d := range diags {
				if d.Kind == want {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: broken.carsasm produced no %s diagnostic (got %v)", tc.mode, want, diags)
			}
		}
	}
}

// TestCleanDemoSilent: the companion clean demo must run diag-free.
func TestCleanDemoSilent(t *testing.T) {
	const path = "../../examples/vetdemo/clean.carsasm"
	for _, mode := range abi.Modes {
		s := runFile(t, path, mode)
		for _, d := range s.Diags() {
			t.Errorf("%s: clean.carsasm: %s", mode, d)
		}
	}
}

// TestSmokeLaunchPicksKernel covers the harness helper.
func TestSmokeLaunchPicksKernel(t *testing.T) {
	mod, err := asm.ParseString(".kernel zeta\n EXIT\n.kernel alpha\n EXIT\n")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := abi.Link(abi.Baseline, mod)
	if err != nil {
		t.Fatal(err)
	}
	l, err := SmokeLaunch(prog)
	if err != nil {
		t.Fatal(err)
	}
	if l.Kernel != "alpha" {
		t.Errorf("SmokeLaunch picked %q, want the alphabetically first kernel", l.Kernel)
	}
	if l.Dim.Grid != 1 || l.Dim.Block != 64 || len(l.Params) != 8 {
		t.Errorf("unexpected smoke launch shape: %+v", l)
	}
}

// TestConfigFor maps every mode to a configuration that enables it.
func TestConfigFor(t *testing.T) {
	if c := ConfigFor(abi.CARS); !c.CARSEnabled {
		t.Error("ConfigFor(CARS) does not enable CARS")
	}
	if c := ConfigFor(abi.Baseline); c.CARSEnabled {
		t.Error("ConfigFor(Baseline) enables CARS")
	}
	if c := ConfigFor(abi.SharedSpill); !strings.Contains(c.Name, config.V100().Name) {
		t.Errorf("ConfigFor(SharedSpill) strays from the V100 base: %q", c.Name)
	}
}
