package san

import (
	"context"
	"errors"
	"fmt"
	"io"

	"carsgo/internal/abi"
	"carsgo/internal/cars"
	"carsgo/internal/config"
	"carsgo/internal/isa"
	"carsgo/internal/sim"
	"carsgo/internal/stats"
	"carsgo/internal/vet"
	"carsgo/internal/workloads"
)

// Perf differential: the dynamic validation of vet's static cost and
// occupancy analysis (DESIGN.md §9). For every workload and ABI mode
// it checks three properties against real executions:
//
//  1. Dominance — every finite static spill/traffic bound covers the
//     dynamic counters (folded into Check, shared with -diff).
//  2. Exactness — the static occupancy model predicts the simulator's
//     peak resident-warp count *exactly*: for non-CARS programs at the
//     baseline allocation, and for CARS programs at every ladder level,
//     each pinned with a forced policy.
//  3. Advice — the watermark advisor's recommended level, measured in
//     cycles, is never beaten by another level by more than the regret
//     threshold.

// DefaultRegret is the advisor regret threshold: the advised level may
// cost at most 35% more cycles than the best measured level.
const DefaultRegret = 0.35

// LevelRun is one measured design point of a kernel.
type LevelRun struct {
	Level       string `json:"level"`
	StackSlots  int    `json:"stackSlots"`
	StaticWarps int    `json:"staticWarps"` // vet's predicted wave occupancy
	SimWarps    int    `json:"simWarps"`    // stats.Kernel.ResidentWarps
	SanWarps    int    `json:"sanWarps"`    // sanitizer's admit/retire bookkeeping
	Cycles      int64  `json:"cycles"`
}

// PerfResult is the outcome of the perf differential for one workload
// under one ABI mode.
type PerfResult struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	Skipped  bool   `json:"skipped,omitempty"`
	Reason   string `json:"reason,omitempty"`

	Kernel  string     `json:"kernel,omitempty"`
	Levels  []LevelRun `json:"levels,omitempty"`
	Advised string     `json:"advised,omitempty"`
	// Regret is the advised level's measured overshoot over the best
	// level: cycles(advised)/min(cycles) - 1. Zero when advised wins.
	Regret float64 `json:"regret"`

	Violations []string `json:"violations,omitempty"`
}

// OK reports whether the run upheld every perf invariant.
func (r *PerfResult) OK() bool { return r.Skipped || len(r.Violations) == 0 }

// MachineParamsFor converts a simulator configuration into the plain
// parameter struct internal/vet's occupancy model consumes (vet cannot
// import internal/sim).
func MachineParamsFor(cfg sim.Config) vet.MachineParams {
	return vet.MachineParams{
		NumSMs:          cfg.NumSMs,
		MaxWarpsPerSM:   cfg.MaxWarpsPerSM,
		MaxBlocksPerSM:  cfg.MaxBlocksPerSM,
		MaxThreadsPerSM: cfg.MaxThreadsPerSM,
		RegFileSlots:    cfg.RegFileSlots,
		RegGranularity:  cfg.RegGranularity,
		SharedMemBytes:  cfg.SharedMemBytes,
		UnlimitedRegs:   cfg.UnlimitedRegs,
		UnlimitedSmem:   cfg.UnlimitedSmem,
		UnlimitedBlocks: cfg.UnlimitedBlocks,
		CARS:            cfg.CARSEnabled,
	}
}

// Shapes extracts the occupancy-relevant geometry of a launch list.
func Shapes(launches []isa.Launch) []vet.LaunchShape {
	out := make([]vet.LaunchShape, len(launches))
	for i, l := range launches {
		out[i] = vet.LaunchShape{
			Kernel:      l.Kernel,
			Grid:        l.Dim.Grid,
			Block:       l.Dim.Block,
			SharedBytes: l.SharedBytes,
		}
	}
	return out
}

// runMeasured is runVetted plus measurement: it returns the launches
// the setup produced and the per-launch kernel statistics alongside
// the sanitizer.
func runMeasured(ctx context.Context, prog *isa.Program, cfg sim.Config,
	setup func(g *sim.GPU) ([]isa.Launch, error)) (*Sanitizer, []isa.Launch, []*stats.Kernel, error) {
	g, err := sim.New(cfg, prog)
	if err != nil {
		return nil, nil, nil, err
	}
	s := New(prog)
	g.San = s
	launches, err := setup(g)
	if err != nil {
		return nil, nil, nil, err
	}
	var sts []*stats.Kernel
	for _, l := range launches {
		need := l.SharedBytes + prog.SmemSpillPerThread*l.Dim.Block
		if !cfg.UnlimitedSmem && need > cfg.SharedMemBytes {
			return nil, nil, nil, fmt.Errorf("san: launch %s: %w (needs %dB, SM has %dB)",
				l.Kernel, ErrNoFit, need, cfg.SharedMemBytes)
		}
		st, err := g.RunContext(ctx, l)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("san: launch %s: %w", l.Kernel, err)
		}
		sts = append(sts, st)
	}
	return s, launches, sts, nil
}

// peaks returns the opening-wave resident-warp counts of one measured
// run: the simulator's own statistic and the sanitizer's independently-
// tracked admit/exit bookkeeping for the given kernel.
func peaks(s *Sanitizer, sts []*stats.Kernel, kernel string) (sim, san int) {
	for _, st := range sts {
		if st.ResidentWarps > sim {
			sim = st.ResidentWarps
		}
	}
	for _, ko := range s.Observations().Kernels {
		if ko.Kernel == kernel {
			san = ko.ResidentWarps
		}
	}
	return sim, san
}

func sumCycles(sts []*stats.Kernel) int64 {
	var total int64
	for _, st := range sts {
		total += st.Cycles
	}
	return total
}

// PerfDiffWorkload runs the perf differential for one workload under
// one ABI mode.
func PerfDiffWorkload(ctx context.Context, w *workloads.Workload, mode abi.Mode, regret float64) (*PerfResult, error) {
	res := &PerfResult{Workload: w.Name, Mode: mode.String()}
	prog, err := abi.Link(mode, w.Modules()...)
	if err != nil {
		if errors.Is(err, abi.ErrRecursive) {
			res.Skipped, res.Reason = true, "recursive call graph"
			return res, nil
		}
		return nil, err
	}
	rep := vet.Report(prog)
	for _, d := range rep.Diags {
		if d.Sev >= vet.SevError {
			return nil, fmt.Errorf("san: program does not vet: %s", d)
		}
	}
	cfg := ConfigFor(mode)
	s, launches, sts, err := runMeasured(ctx, prog, cfg, w.Setup)
	if err != nil {
		if errors.Is(err, ErrNoFit) {
			res.Skipped, res.Reason = true, "shared-spill frame exceeds shared memory"
			return res, nil
		}
		return nil, err
	}
	for _, d := range s.Diags() {
		res.Violations = append(res.Violations, fmt.Sprintf("sanitizer: %s", d))
	}

	m := MachineParamsFor(cfg)
	shapes := Shapes(launches)
	if err := vet.AnalyzePerf(rep, prog, m, shapes); err != nil {
		return nil, err
	}
	// Dominance: finite static cost bounds must cover the dynamic
	// counters of the primary run (plus the pre-existing -diff rows).
	res.Violations = append(res.Violations, Check(rep, s, prog.CARS)...)

	// The level study pins one kernel per workload; a workload that
	// launches several distinct kernels (PTA's two-phase pipeline) still
	// gets the dominance check above, but its ladder would conflate the
	// kernels' occupancy figures — reduce scope rather than fail.
	kernel := launches[0].Kernel
	for _, l := range launches {
		if l.Kernel != kernel {
			res.Reason = fmt.Sprintf("multi-kernel launch (%s, %s): dominance only, level study skipped", kernel, l.Kernel)
			return res, nil
		}
	}
	res.Kernel = kernel
	kr := rep.Kernel(kernel)
	if kr == nil || kr.Perf == nil || len(kr.Perf.Occupancy) == 0 {
		res.Violations = append(res.Violations, fmt.Sprintf("%s: no static occupancy rows", kernel))
		return res, nil
	}

	if !prog.CARS {
		// Non-CARS: a single "base" design point, already measured by
		// the primary run. Exactness is unconditional.
		row := kr.Perf.Occupancy[0]
		simPeak, sanPeak := peaks(s, sts, kernel)
		res.Levels = []LevelRun{{
			Level: row.Level, StaticWarps: row.ResidentWarps,
			SimWarps: simPeak, SanWarps: sanPeak, Cycles: sumCycles(sts),
		}}
		exactWarps(res, row.Level, row.ResidentWarps, simPeak, sanPeak)
		return res, nil
	}

	// CARS: pin the simulator to each ladder level in turn and hold the
	// model to exactness at every design point.
	plan, err := m.PlanFor(prog, shapes[0])
	if err != nil {
		return nil, err
	}
	if len(plan.Levels) != len(kr.Perf.Occupancy) {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%s: plan has %d levels but the report has %d occupancy rows",
				kernel, len(plan.Levels), len(kr.Perf.Occupancy)))
		return res, nil
	}
	for i, lvl := range plan.Levels {
		fcfg := config.WithCARSPolicy(config.V100(), cars.ForcedPolicy(lvl))
		fs, _, fsts, err := runMeasured(ctx, prog, fcfg, w.Setup)
		if err != nil {
			return nil, fmt.Errorf("forced %s: %w", lvl.Name(), err)
		}
		for _, d := range fs.Diags() {
			res.Violations = append(res.Violations, fmt.Sprintf("forced %s: sanitizer: %s", lvl.Name(), d))
		}
		for _, v := range Check(rep, fs, true) {
			res.Violations = append(res.Violations, fmt.Sprintf("forced %s: %s", lvl.Name(), v))
		}
		row := kr.Perf.Occupancy[i]
		simPeak, sanPeak := peaks(fs, fsts, kernel)
		res.Levels = append(res.Levels, LevelRun{
			Level: row.Level, StackSlots: lvl.StackSlots, StaticWarps: row.ResidentWarps,
			SimWarps: simPeak, SanWarps: sanPeak, Cycles: sumCycles(fsts),
		})
		exactWarps(res, row.Level, row.ResidentWarps, simPeak, sanPeak)
	}

	// Advisor regret: the recommended level, measured in cycles, may
	// lose to the best level by at most the regret threshold.
	adv := kr.Perf.Advice
	if adv == nil {
		res.Violations = append(res.Violations, fmt.Sprintf("%s: CARS kernel has no advice", kernel))
		return res, nil
	}
	res.Advised = adv.Level
	best := res.Levels[0].Cycles
	for _, lr := range res.Levels[1:] {
		if lr.Cycles < best {
			best = lr.Cycles
		}
	}
	advised := res.Levels[adv.LevelIndex].Cycles
	if best > 0 {
		res.Regret = float64(advised)/float64(best) - 1
	}
	if res.Regret > regret {
		res.Violations = append(res.Violations,
			fmt.Sprintf("advisor picked %s (%d cycles) but the best level runs in %d cycles: regret %.2f exceeds %.2f",
				adv.Level, advised, best, res.Regret, regret))
	}
	if w.PerfExpect.AvoidHigh {
		highRow := kr.Perf.Occupancy[len(kr.Perf.Occupancy)-1]
		advRow := kr.Perf.Occupancy[adv.LevelIndex]
		if adv.Level == "High" {
			res.Violations = append(res.Violations,
				"expected the advisor to steer away from High, but it recommended High")
		}
		if highRow.ResidentWarps >= advRow.ResidentWarps {
			res.Violations = append(res.Violations,
				fmt.Sprintf("expected an occupancy cliff at High (%d warps) below the advised %s (%d warps)",
					highRow.ResidentWarps, adv.Level, advRow.ResidentWarps))
		}
	}
	return res, nil
}

// exactWarps asserts the static occupancy model's exactness for one
// measured design point.
func exactWarps(res *PerfResult, level string, static, simPeak, sanPeak int) {
	if simPeak != static {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%s: simulator peaked at %d resident warps, model predicts %d", level, simPeak, static))
	}
	if sanPeak != static {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%s: sanitizer tracked %d resident warps, model predicts %d", level, sanPeak, static))
	}
}

// PerfDiffWorkloads runs the perf differential over the named
// workloads (all of Table I plus the perf-registry cases when names is
// empty) in every linkable ABI mode. It returns the per-run results
// and whether every run upheld the invariants.
func PerfDiffWorkloads(ctx context.Context, names []string, regret float64, out io.Writer) ([]*PerfResult, bool, error) {
	var list []*workloads.Workload
	if len(names) == 0 {
		list = append(list, workloads.All()...)
		list = append(list, workloads.PerfCases()...)
	} else {
		for _, n := range names {
			w, err := workloads.ByName(n)
			if err != nil {
				return nil, false, err
			}
			list = append(list, w)
		}
	}
	var results []*PerfResult
	ok := true
	for _, w := range list {
		for _, mode := range abi.Modes {
			res, err := PerfDiffWorkload(ctx, w, mode, regret)
			if err != nil {
				return results, false, fmt.Errorf("%s/%s: %w", w.Name, mode, err)
			}
			results = append(results, res)
			switch {
			case res.Skipped:
				fmt.Fprintf(out, "skip %-16s %-9s (%s)\n", w.Name, res.Mode, res.Reason)
			case res.OK():
				fmt.Fprintf(out, "ok   %-16s %-9s %s\n", w.Name, res.Mode, perfSummary(res))
			default:
				ok = false
				fmt.Fprintf(out, "FAIL %-16s %-9s\n", w.Name, res.Mode)
				for _, v := range res.Violations {
					fmt.Fprintf(out, "     %s\n", v)
				}
			}
		}
	}
	return results, ok, nil
}

func perfSummary(res *PerfResult) string {
	if res.Advised != "" {
		return fmt.Sprintf("advice %s, regret %.2f, %d level(s)", res.Advised, res.Regret, len(res.Levels))
	}
	if len(res.Levels) == 1 {
		return fmt.Sprintf("base %d warps", res.Levels[0].StaticWarps)
	}
	if res.Reason != "" {
		return res.Reason
	}
	return ""
}
