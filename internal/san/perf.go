package san

import (
	"context"
	"errors"
	"fmt"
	"io"

	"carsgo/internal/abi"
	"carsgo/internal/cars"
	"carsgo/internal/config"
	"carsgo/internal/isa"
	"carsgo/internal/sim"
	"carsgo/internal/stats"
	"carsgo/internal/vet"
	"carsgo/internal/workloads"
)

// Perf differential: the dynamic validation of vet's static cost and
// occupancy analysis (DESIGN.md §9). For every workload and ABI mode
// it checks three properties against real executions:
//
//  1. Dominance — every finite static spill/traffic bound covers the
//     dynamic counters (folded into Check, shared with -diff).
//  2. Exactness — the static occupancy model predicts the simulator's
//     peak resident-warp count *exactly*: for non-CARS programs at the
//     baseline allocation, and for CARS programs at every ladder level,
//     each pinned with a forced policy.
//  3. Advice — the watermark advisor's recommended level, measured in
//     cycles, is never beaten by another level by more than the regret
//     threshold.

// DefaultRegret is the advisor regret threshold: the advised level may
// cost at most 35% more cycles than the best measured level.
const DefaultRegret = 0.35

// LevelRun is one measured design point of a kernel.
type LevelRun struct {
	Level       string `json:"level"`
	StackSlots  int    `json:"stackSlots"`
	StaticWarps int    `json:"staticWarps"` // vet's predicted wave occupancy
	SimWarps    int    `json:"simWarps"`    // stats.Kernel.ResidentWarps
	SanWarps    int    `json:"sanWarps"`    // sanitizer's admit/retire bookkeeping
	Cycles      int64  `json:"cycles"`
}

// BackendRun is one spill-policy backend's measured level ladder
// (the per-backend half of the lattice differential).
type BackendRun struct {
	Backend string     `json:"backend"`
	Levels  []LevelRun `json:"levels"`
	Advised string     `json:"advised,omitempty"`
	// Regret is the backend advisor's measured overshoot within its own
	// ladder — hard-gated at the regret threshold.
	Regret float64 `json:"regret"`
}

// PerfResult is the outcome of the perf differential for one workload
// under one ABI mode.
type PerfResult struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	Skipped  bool   `json:"skipped,omitempty"`
	Reason   string `json:"reason,omitempty"`

	Kernel  string     `json:"kernel,omitempty"`
	Levels  []LevelRun `json:"levels,omitempty"`
	Advised string     `json:"advised,omitempty"`
	// Regret is the advised level's measured overshoot over the best
	// level: cycles(advised)/min(cycles) - 1. Zero when advised wins.
	Regret float64 `json:"regret"`

	// Backends carries the per-backend ladders measured under this mode
	// (shared-spill mode realises the smem and rfcache backends; CARS
	// mode's ladder is the Levels field above). CrossBackend/CrossRegret
	// record — without gating — how the cross-backend advisor's pick
	// fared against the best measured cell of this mode's lattice.
	Backends     []BackendRun `json:"backends,omitempty"`
	CrossBackend string       `json:"crossBackend,omitempty"`
	CrossRegret  float64      `json:"crossRegret,omitempty"`

	Violations []string `json:"violations,omitempty"`
}

// OK reports whether the run upheld every perf invariant.
func (r *PerfResult) OK() bool { return r.Skipped || len(r.Violations) == 0 }

// MachineParamsFor converts a simulator configuration into the plain
// parameter struct internal/vet's occupancy model consumes (vet cannot
// import internal/sim).
func MachineParamsFor(cfg sim.Config) vet.MachineParams {
	return vet.MachineParams{
		NumSMs:          cfg.NumSMs,
		MaxWarpsPerSM:   cfg.MaxWarpsPerSM,
		MaxBlocksPerSM:  cfg.MaxBlocksPerSM,
		MaxThreadsPerSM: cfg.MaxThreadsPerSM,
		RegFileSlots:    cfg.RegFileSlots,
		RegGranularity:  cfg.RegGranularity,
		SharedMemBytes:  cfg.SharedMemBytes,
		UnlimitedRegs:   cfg.UnlimitedRegs,
		UnlimitedSmem:   cfg.UnlimitedSmem,
		UnlimitedBlocks: cfg.UnlimitedBlocks,
		CARS:            cfg.CARSEnabled,
	}
}

// Shapes extracts the occupancy-relevant geometry of a launch list.
func Shapes(launches []isa.Launch) []vet.LaunchShape {
	out := make([]vet.LaunchShape, len(launches))
	for i, l := range launches {
		out[i] = vet.LaunchShape{
			Kernel:      l.Kernel,
			Grid:        l.Dim.Grid,
			Block:       l.Dim.Block,
			SharedBytes: l.SharedBytes,
		}
	}
	return out
}

// runMeasured is runVetted plus measurement: it returns the launches
// the setup produced and the per-launch kernel statistics alongside
// the sanitizer.
func runMeasured(ctx context.Context, prog *isa.Program, cfg sim.Config,
	setup func(g *sim.GPU) ([]isa.Launch, error)) (*Sanitizer, []isa.Launch, []*stats.Kernel, error) {
	g, err := sim.New(cfg, prog)
	if err != nil {
		return nil, nil, nil, err
	}
	s := New(prog)
	g.San = s
	launches, err := setup(g)
	if err != nil {
		return nil, nil, nil, err
	}
	var sts []*stats.Kernel
	for _, l := range launches {
		need := l.SharedBytes + prog.SmemSpillPerThread*l.Dim.Block
		if !cfg.UnlimitedSmem && need > cfg.SharedMemBytes {
			return nil, nil, nil, fmt.Errorf("san: launch %s: %w (needs %dB, SM has %dB)",
				l.Kernel, ErrNoFit, need, cfg.SharedMemBytes)
		}
		st, err := g.RunContext(ctx, l)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("san: launch %s: %w", l.Kernel, err)
		}
		sts = append(sts, st)
	}
	return s, launches, sts, nil
}

// peaks returns the opening-wave resident-warp counts of one measured
// run: the simulator's own statistic and the sanitizer's independently-
// tracked admit/exit bookkeeping for the given kernel.
func peaks(s *Sanitizer, sts []*stats.Kernel, kernel string) (sim, san int) {
	for _, st := range sts {
		if st.ResidentWarps > sim {
			sim = st.ResidentWarps
		}
	}
	for _, ko := range s.Observations().Kernels {
		if ko.Kernel == kernel {
			san = ko.ResidentWarps
		}
	}
	return sim, san
}

func sumCycles(sts []*stats.Kernel) int64 {
	var total int64
	for _, st := range sts {
		total += st.Cycles
	}
	return total
}

// PerfDiffWorkload runs the perf differential for one workload under
// one ABI mode.
func PerfDiffWorkload(ctx context.Context, w *workloads.Workload, mode abi.Mode, regret float64) (*PerfResult, error) {
	res := &PerfResult{Workload: w.Name, Mode: mode.String()}
	prog, err := abi.Link(mode, w.Modules()...)
	if err != nil {
		if errors.Is(err, abi.ErrRecursive) {
			res.Skipped, res.Reason = true, "recursive call graph"
			return res, nil
		}
		return nil, err
	}
	rep := vet.Report(prog)
	for _, d := range rep.Diags {
		if d.Sev >= vet.SevError {
			return nil, fmt.Errorf("san: program does not vet: %s", d)
		}
	}
	cfg := ConfigFor(mode)
	s, launches, sts, err := runMeasured(ctx, prog, cfg, w.Setup)
	if err != nil {
		if errors.Is(err, ErrNoFit) {
			res.Skipped, res.Reason = true, "shared-spill frame exceeds shared memory"
			return res, nil
		}
		return nil, err
	}
	for _, d := range s.Diags() {
		res.Violations = append(res.Violations, fmt.Sprintf("sanitizer: %s", d))
	}

	m := MachineParamsFor(cfg)
	shapes := Shapes(launches)
	if err := vet.AnalyzePerf(rep, prog, m, shapes); err != nil {
		return nil, err
	}
	// Dominance: finite static cost bounds must cover the dynamic
	// counters of the primary run (plus the pre-existing -diff rows).
	res.Violations = append(res.Violations, Check(rep, s, prog.CARS)...)

	// The level study pins one kernel per workload; a workload that
	// launches several distinct kernels (PTA's two-phase pipeline) still
	// gets the dominance check above, but its ladder would conflate the
	// kernels' occupancy figures — reduce scope rather than fail.
	kernel := launches[0].Kernel
	for _, l := range launches {
		if l.Kernel != kernel {
			res.Reason = fmt.Sprintf("multi-kernel launch (%s, %s): dominance only, level study skipped", kernel, l.Kernel)
			return res, nil
		}
	}
	res.Kernel = kernel
	kr := rep.Kernel(kernel)
	if kr == nil || kr.Perf == nil || len(kr.Perf.Occupancy) == 0 {
		res.Violations = append(res.Violations, fmt.Sprintf("%s: no static occupancy rows", kernel))
		return res, nil
	}

	if !prog.CARS {
		// Non-CARS: a single "base" design point, already measured by
		// the primary run. Exactness is unconditional.
		row := kr.Perf.Occupancy[0]
		simPeak, sanPeak := peaks(s, sts, kernel)
		res.Levels = []LevelRun{{
			Level: row.Level, StaticWarps: row.ResidentWarps,
			SimWarps: simPeak, SanWarps: sanPeak, Cycles: sumCycles(sts),
		}}
		exactWarps(res, row.Level, row.ResidentWarps, simPeak, sanPeak)
		smemParity(res, row.Level, s, sts, kernel)
		if mode == abi.SharedSpill && prog.SmemSpillPerThread > 0 {
			// Zero-spill programs link under SharedSpill without a
			// frame: no lattice to study, the base row says it all.
			if err := backendStudy(ctx, res, w, prog, rep, kr, m, shapes[0], s, sts, regret); err != nil {
				return nil, err
			}
		}
		return res, nil
	}

	smemParity(res, "adaptive", s, sts, kernel)
	// CARS: pin the simulator to each ladder level in turn and hold the
	// model to exactness at every design point.
	plan, err := m.PlanFor(prog, shapes[0])
	if err != nil {
		return nil, err
	}
	if len(plan.Levels) != len(kr.Perf.Occupancy) {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%s: plan has %d levels but the report has %d occupancy rows",
				kernel, len(plan.Levels), len(kr.Perf.Occupancy)))
		return res, nil
	}
	for i, lvl := range plan.Levels {
		fcfg := config.WithCARSPolicy(config.V100(), cars.ForcedPolicy(lvl))
		fs, _, fsts, err := runMeasured(ctx, prog, fcfg, w.Setup)
		if err != nil {
			return nil, fmt.Errorf("forced %s: %w", lvl.Name(), err)
		}
		for _, d := range fs.Diags() {
			res.Violations = append(res.Violations, fmt.Sprintf("forced %s: sanitizer: %s", lvl.Name(), d))
		}
		for _, v := range Check(rep, fs, true) {
			res.Violations = append(res.Violations, fmt.Sprintf("forced %s: %s", lvl.Name(), v))
		}
		row := kr.Perf.Occupancy[i]
		simPeak, sanPeak := peaks(fs, fsts, kernel)
		res.Levels = append(res.Levels, LevelRun{
			Level: row.Level, StackSlots: lvl.StackSlots, StaticWarps: row.ResidentWarps,
			SimWarps: simPeak, SanWarps: sanPeak, Cycles: sumCycles(fsts),
		})
		exactWarps(res, row.Level, row.ResidentWarps, simPeak, sanPeak)
		smemParity(res, "forced "+lvl.Name(), fs, fsts, kernel)
	}

	// Advisor regret: the recommended level, measured in cycles, may
	// lose to the best level by at most the regret threshold.
	adv := kr.Perf.Advice
	if adv == nil {
		res.Violations = append(res.Violations, fmt.Sprintf("%s: CARS kernel has no advice", kernel))
		return res, nil
	}
	res.Advised = adv.Level
	best := res.Levels[0].Cycles
	for _, lr := range res.Levels[1:] {
		if lr.Cycles < best {
			best = lr.Cycles
		}
	}
	advised := res.Levels[adv.LevelIndex].Cycles
	if best > 0 {
		res.Regret = float64(advised)/float64(best) - 1
	}
	if res.Regret > regret {
		res.Violations = append(res.Violations,
			fmt.Sprintf("advisor picked %s (%d cycles) but the best level runs in %d cycles: regret %.2f exceeds %.2f",
				adv.Level, advised, best, res.Regret, regret))
	}
	if w.PerfExpect.AvoidHigh {
		highRow := kr.Perf.Occupancy[len(kr.Perf.Occupancy)-1]
		advRow := kr.Perf.Occupancy[adv.LevelIndex]
		if adv.Level == "High" {
			res.Violations = append(res.Violations,
				"expected the advisor to steer away from High, but it recommended High")
		}
		if highRow.ResidentWarps >= advRow.ResidentWarps {
			res.Violations = append(res.Violations,
				fmt.Sprintf("expected an occupancy cliff at High (%d warps) below the advised %s (%d warps)",
					highRow.ResidentWarps, adv.Level, advRow.ResidentWarps))
		}
	}
	// Mirror the ladder as the cars backend's lattice column.
	res.Backends = append(res.Backends, BackendRun{
		Backend: cars.BackendCARS.String(), Levels: res.Levels,
		Advised: adv.Level, Regret: res.Regret,
	})
	return res, nil
}

// kernelObsFor returns the sanitizer's per-kernel observation row, or
// nil when the kernel never started a warp.
func kernelObsFor(s *Sanitizer, kernel string) *KernelObs {
	obs := s.Observations()
	for i := range obs.Kernels {
		if obs.Kernels[i].Kernel == kernel {
			return &obs.Kernels[i]
		}
	}
	return nil
}

// smemParity holds the simulator's and the sanitizer's independently-
// accumulated shared-memory transaction and RF-cache hit counters to
// exact agreement for one measured run of a single kernel.
func smemParity(res *PerfResult, label string, s *Sanitizer, sts []*stats.Kernel, kernel string) {
	var simTxns, simHits uint64
	for _, st := range sts {
		simTxns += st.SmemTxns
		simHits += st.RFCacheHits
	}
	ko := kernelObsFor(s, kernel)
	var sanTxns, sanHits uint64
	if ko != nil {
		sanTxns, sanHits = ko.SmemTxns, ko.RFCacheHits
	}
	if simTxns != sanTxns {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%s: simulator counted %d shared transactions, sanitizer %d", label, simTxns, sanTxns))
	}
	if simHits != sanHits {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%s: simulator counted %d RF-cache hits, sanitizer %d", label, simHits, sanHits))
	}
}

// backendPerf finds one backend's lattice column in a kernel report.
func backendPerf(kr *vet.KernelReport, name string) *vet.BackendPerf {
	if kr.Perf == nil {
		return nil
	}
	for i := range kr.Perf.Backends {
		if kr.Perf.Backends[i].Backend == name {
			return &kr.Perf.Backends[i]
		}
	}
	return nil
}

// residDom holds one measured run to a backend level's residual
// traffic bounds: the per-warp unabsorbed spill bytes and bank
// transactions may not exceed the static residual at that level.
func residDom(res *PerfResult, label string, bl vet.BackendLevel, ko *KernelObs) {
	if ko == nil {
		return
	}
	if b := bl.SpillSmemBytes; b.Finite() && ko.MaxWarpSmemSpillBytes > uint64(b.Value) {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%s: dynamic residual spill traffic %dB exceeds static bound %s",
				label, ko.MaxWarpSmemSpillBytes, b.Sym))
	}
	if b := bl.SmemTxns; b.Finite() && ko.MaxWarpSmemTxns > uint64(b.Value) {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%s: dynamic shared transactions %d exceed static bound %s",
				label, ko.MaxWarpSmemTxns, b.Sym))
	}
}

// backendStudy runs the shared-spill mode's half of the lattice
// differential: the smem backend (the primary run, one design point)
// and the RF-cache window ladder, each window pinned in the simulator
// and held to dominance, occupancy exactness, counter parity, and —
// within the rfcache ladder — the advisor regret gate. The cross-
// backend advisor's pick is measured against the best cell and
// recorded (not gated) as CrossRegret.
func backendStudy(ctx context.Context, res *PerfResult, w *workloads.Workload, prog *isa.Program,
	rep *vet.ProgramReport, kr *vet.KernelReport, m vet.MachineParams, shape vet.LaunchShape,
	s *Sanitizer, sts []*stats.Kernel, regret float64) error {

	smemBP := backendPerf(kr, cars.BackendSmemSpill.String())
	rfcBP := backendPerf(kr, cars.BackendRFCache.String())
	if smemBP == nil || rfcBP == nil || len(smemBP.Levels) == 0 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%s: shared-spill program lacks backend lattice rows", kr.Kernel))
		return nil
	}

	// smem backend: the primary run is its single design point.
	smemRun := BackendRun{Backend: smemBP.Backend, Levels: []LevelRun{res.Levels[0]}}
	if adv := smemBP.Advice; adv != nil {
		smemRun.Advised = adv.Level
	}
	residDom(res, "smem base", smemBP.Levels[0], kernelObsFor(s, kr.Kernel))
	res.Backends = append(res.Backends, smemRun)

	// RF-cache backend: force every window of the very ladder vet
	// modelled and hold each cell to the full invariant set.
	plan, err := m.WindowPlanFor(prog, shape)
	if err != nil {
		return err
	}
	if len(plan.Levels) != len(rfcBP.Levels) {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%s: window plan has %d levels but the report has %d rfcache rows",
				kr.Kernel, len(plan.Levels), len(rfcBP.Levels)))
		return nil
	}
	rfcRun := BackendRun{Backend: rfcBP.Backend}
	for i, lvl := range plan.Levels {
		label := "rfcache " + lvl.Name()
		fcfg := config.WithRFCache(config.V100(), lvl.StackSlots)
		fs, _, fsts, err := runMeasured(ctx, prog, fcfg, w.Setup)
		if err != nil {
			return fmt.Errorf("forced %s: %w", label, err)
		}
		for _, d := range fs.Diags() {
			res.Violations = append(res.Violations, fmt.Sprintf("%s: sanitizer: %s", label, d))
		}
		for _, v := range Check(rep, fs, false) {
			res.Violations = append(res.Violations, fmt.Sprintf("%s: %s", label, v))
		}
		bl := rfcBP.Levels[i]
		simPeak, sanPeak := peaks(fs, fsts, kr.Kernel)
		rfcRun.Levels = append(rfcRun.Levels, LevelRun{
			Level: bl.Level, StackSlots: lvl.StackSlots, StaticWarps: bl.ResidentWarps,
			SimWarps: simPeak, SanWarps: sanPeak, Cycles: sumCycles(fsts),
		})
		exactWarps(res, label, bl.ResidentWarps, simPeak, sanPeak)
		smemParity(res, label, fs, fsts, kr.Kernel)
		residDom(res, label, bl, kernelObsFor(fs, kr.Kernel))
	}
	if adv := rfcBP.Advice; adv != nil && adv.LevelIndex < len(rfcRun.Levels) {
		rfcRun.Advised = adv.Level
		best := rfcRun.Levels[0].Cycles
		for _, lr := range rfcRun.Levels[1:] {
			if lr.Cycles < best {
				best = lr.Cycles
			}
		}
		advised := rfcRun.Levels[adv.LevelIndex].Cycles
		if best > 0 {
			rfcRun.Regret = float64(advised)/float64(best) - 1
		}
		if rfcRun.Regret > regret {
			res.Violations = append(res.Violations,
				fmt.Sprintf("rfcache advisor picked %s (%d cycles) but the best window runs in %d cycles: regret %.2f exceeds %.2f",
					adv.Level, advised, best, rfcRun.Regret, regret))
		}
	}
	res.Backends = append(res.Backends, rfcRun)

	// Cross-backend advice over this mode's columns, measured and
	// recorded: the smem-mode lattice cannot include the cars cells
	// (a different ABI program), so the cross pick is only held up
	// against the cells measured here.
	for _, ca := range vet.CrossBackendAdvice(rep) {
		if ca.Kernel != kr.Kernel {
			continue
		}
		res.CrossBackend = ca.Backend + "/" + ca.Level
		cells := map[string]int64{smemBP.Backend + "/" + smemBP.Levels[0].Level: res.Levels[0].Cycles}
		for _, lr := range rfcRun.Levels {
			cells[rfcBP.Backend+"/"+lr.Level] = lr.Cycles
		}
		best := int64(-1)
		for _, c := range cells {
			if best < 0 || c < best {
				best = c
			}
		}
		if advised, ok := cells[res.CrossBackend]; ok && best > 0 {
			res.CrossRegret = float64(advised)/float64(best) - 1
		}
	}
	return nil
}

// exactWarps asserts the static occupancy model's exactness for one
// measured design point.
func exactWarps(res *PerfResult, level string, static, simPeak, sanPeak int) {
	if simPeak != static {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%s: simulator peaked at %d resident warps, model predicts %d", level, simPeak, static))
	}
	if sanPeak != static {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%s: sanitizer tracked %d resident warps, model predicts %d", level, sanPeak, static))
	}
}

// PerfDiffWorkloads runs the perf differential over the named
// workloads (all of Table I plus the perf-registry cases when names is
// empty) in every linkable ABI mode. It returns the per-run results
// and whether every run upheld the invariants.
func PerfDiffWorkloads(ctx context.Context, names []string, regret float64, out io.Writer) ([]*PerfResult, bool, error) {
	var list []*workloads.Workload
	if len(names) == 0 {
		list = append(list, workloads.All()...)
		list = append(list, workloads.PerfCases()...)
	} else {
		for _, n := range names {
			w, err := workloads.ByName(n)
			if err != nil {
				return nil, false, err
			}
			list = append(list, w)
		}
	}
	var results []*PerfResult
	ok := true
	for _, w := range list {
		for _, mode := range abi.Modes {
			res, err := PerfDiffWorkload(ctx, w, mode, regret)
			if err != nil {
				return results, false, fmt.Errorf("%s/%s: %w", w.Name, mode, err)
			}
			results = append(results, res)
			switch {
			case res.Skipped:
				fmt.Fprintf(out, "skip %-16s %-9s (%s)\n", w.Name, res.Mode, res.Reason)
			case res.OK():
				fmt.Fprintf(out, "ok   %-16s %-9s %s\n", w.Name, res.Mode, perfSummary(res))
			default:
				ok = false
				fmt.Fprintf(out, "FAIL %-16s %-9s\n", w.Name, res.Mode)
				for _, v := range res.Violations {
					fmt.Fprintf(out, "     %s\n", v)
				}
			}
		}
	}
	return results, ok, nil
}

func perfSummary(res *PerfResult) string {
	if res.Advised != "" {
		return fmt.Sprintf("advice %s, regret %.2f, %d level(s)", res.Advised, res.Regret, len(res.Levels))
	}
	if len(res.Levels) == 1 {
		return fmt.Sprintf("base %d warps", res.Levels[0].StaticWarps)
	}
	if res.Reason != "" {
		return res.Reason
	}
	return ""
}
