package san

import (
	"strings"
	"testing"

	"carsgo/internal/isa"
)

// Unit tests drive the Monitor hooks directly with hand-built event
// sequences, one per diagnostic kind, so each check is covered by a
// known-bad input independent of the simulator.

// testProg builds a tiny linked program shape: one kernel (index 0)
// and one device function (index 1) with two callee-saved registers.
func testProg(cars bool) *isa.Program {
	return &isa.Program{
		Funcs: []*isa.Function{
			{Name: "main", IsKernel: true, RegsUsed: 18},
			{Name: "leaf", RegsUsed: 18, CalleeSaved: 2},
		},
		Kernels: map[string]int{"main": 0},
		CARS:    cars,
	}
}

func lanes(vals ...uint32) *[isa.WarpSize]uint32 {
	var a [isa.WarpSize]uint32
	copy(a[:], vals)
	return &a
}

// regFile is a trivial RegVals backing store for hook-level tests.
type regFile map[uint8][isa.WarpSize]uint32

func (f regFile) vals(r uint8) *[isa.WarpSize]uint32 {
	a := f[r]
	return &a
}

func kinds(s *Sanitizer) []Kind {
	var out []Kind
	for _, d := range s.Diags() {
		out = append(out, d.Kind)
	}
	return out
}

func wantKind(t *testing.T, s *Sanitizer, want Kind) {
	t.Helper()
	for _, d := range s.Diags() {
		if d.Kind == want {
			return
		}
	}
	t.Errorf("no %s diagnostic; got %v", want, kinds(s))
}

func wantClean(t *testing.T, s *Sanitizer) {
	t.Helper()
	for _, d := range s.Diags() {
		t.Errorf("unexpected diagnostic: %s [%s pc=%d]", d, d.Func, d.PC)
	}
}

// startWarp begins a kernel warp with a CARS stack of the given size.
func startWarp(s *Sanitizer, slots int) {
	s.WarpStart(0, 0, 0, 0, slots, fullMask)
}

// enterLeaf walks warp 0 through a complete call into func 1 with one
// pushed register, mirroring the micro-op sequence the simulator
// reports: CallBegin, CallEnd (saved-RFP consumed), then PUSH 1.
func enterLeaf(s *Sanitizer, rf regFile) {
	s.CallBegin(0, 0, 10, 1, 2, rf.vals)
	s.CallEnd(0, 1, 1)
	s.StackPush(0, 1, 0, 1, 1, 2)
}

func TestUninitReadStatic(t *testing.T) {
	s := New(testProg(false))
	startWarp(s, 0)
	// R0..R15 are warp-start defined; R20 is not.
	s.RegRead(0, 0, 3, isa.OpIAdd, 5, fullMask)
	wantClean(t, s)
	s.RegRead(0, 0, 4, isa.OpIAdd, 20, fullMask)
	wantKind(t, s, KindUninitRead)
}

func TestUninitReadPerLane(t *testing.T) {
	s := New(testProg(false))
	startWarp(s, 0)
	s.RegWrite(0, 0, 1, 20, 0x0000FFFF) // lower half only
	s.RegRead(0, 0, 2, isa.OpIAdd, 20, 0x0000FFFF)
	wantClean(t, s)
	s.RegRead(0, 0, 3, isa.OpIAdd, 20, fullMask) // upper half uninitialized
	wantKind(t, s, KindUninitRead)
}

func TestUninitReadFreshPush(t *testing.T) {
	s := New(testProg(true))
	rf := regFile{}
	startWarp(s, 8)
	enterLeaf(s, rf)
	// R16 renames to a freshly pushed slot: uninitialized until written.
	s.RegRead(0, 1, 1, isa.OpIAdd, 16, fullMask)
	wantKind(t, s, KindUninitRead)

	s = New(testProg(true))
	startWarp(s, 8)
	enterLeaf(s, rf)
	s.RegWrite(0, 1, 1, 16, fullMask)
	s.RegRead(0, 1, 2, isa.OpIAdd, 16, fullMask)
	wantClean(t, s)
}

func TestOutOfWindowAccess(t *testing.T) {
	s := New(testProg(true))
	startWarp(s, 8)
	enterLeaf(s, regFile{})
	// Only one register pushed: R17 is outside the renamed window.
	s.RegWrite(0, 1, 2, 17, fullMask)
	wantKind(t, s, KindABIClobber)
	s.RegRead(0, 1, 3, isa.OpIAdd, 18, fullMask)
	wantKind(t, s, KindUninitRead)
}

func TestABIClobberSnapshot(t *testing.T) {
	rf := regFile{16: {7, 7}, 17: {9}}
	s := New(testProg(false))
	startWarp(s, 0)
	s.CallBegin(0, 0, 10, 1, 2, rf.vals)
	rf[17] = [isa.WarpSize]uint32{42} // callee clobbers R17 and returns
	s.Return(0, 1, 20, 0, 0, rf.vals)
	wantKind(t, s, KindABIClobber)

	rf[17] = [isa.WarpSize]uint32{9} // restored: clean round trip
	s = New(testProg(false))
	startWarp(s, 0)
	s.CallBegin(0, 0, 10, 1, 2, rf.vals)
	s.Return(0, 1, 20, 0, 0, rf.vals)
	wantClean(t, s)
}

func TestBaselineWindowWrite(t *testing.T) {
	s := New(testProg(false))
	startWarp(s, 0)
	s.CallBegin(0, 0, 10, 1, 2, regFile{}.vals)
	s.RegWrite(0, 1, 1, 17, fullMask) // inside leaf's 2-register window
	wantClean(t, s)
	s.RegWrite(0, 1, 2, 20, fullMask) // outside: physically the caller's
	wantKind(t, s, KindABIClobber)
	// Kernels own their whole register range.
	s = New(testProg(false))
	startWarp(s, 0)
	s.RegWrite(0, 0, 1, 20, fullMask)
	wantClean(t, s)
}

func TestBaselinePerActivationInit(t *testing.T) {
	// The caller initialized R16, but each activation must still write
	// its window registers before reading them; the caller's view comes
	// back on return.
	rf := regFile{}
	s := New(testProg(false))
	startWarp(s, 0)
	s.RegWrite(0, 0, 1, 16, fullMask)
	s.CallBegin(0, 0, 2, 1, 2, rf.vals)
	s.RegRead(0, 1, 0, isa.OpIAdd, 16, fullMask)
	wantKind(t, s, KindUninitRead)

	s = New(testProg(false))
	startWarp(s, 0)
	s.RegWrite(0, 0, 1, 16, fullMask)
	s.CallBegin(0, 0, 2, 1, 2, rf.vals)
	s.Return(0, 1, 9, 0, 0, rf.vals)
	s.RegRead(0, 0, 3, isa.OpIAdd, 16, fullMask) // caller's R16 still defined
	wantClean(t, s)
}

func TestSpillPairAndStaleFill(t *testing.T) {
	rf := regFile{}
	s := New(testProg(false))
	startWarp(s, 0)
	s.CallBegin(0, 0, 10, 1, 2, rf.vals)

	// Fill with no store at the offset: stale.
	s.SpillFill(0, 1, 5, 16, 0, fullMask, lanes(1))
	wantKind(t, s, KindStaleFill)

	// Store R16, fill R17 from the same offset: mispaired.
	s.SpillStore(0, 1, 6, 16, 4, fullMask, lanes(11, 22))
	s.SpillFill(0, 1, 7, 17, 4, fullMask, lanes(11, 22))
	wantKind(t, s, KindSpillPair)

	// Values coming back differ from what was stored: stale.
	s.SpillStore(0, 1, 8, 18, 8, fullMask, lanes(5, 5))
	s.SpillFill(0, 1, 9, 18, 8, fullMask, lanes(5, 6))
	found := false
	for _, d := range s.Diags() {
		if d.Kind == KindStaleFill && strings.Contains(d.Msg, "offset 8") {
			found = true
		}
	}
	if !found {
		t.Errorf("value-mismatch fill not flagged: %v", s.Diags())
	}
}

func TestSpillRoundTripClean(t *testing.T) {
	rf := regFile{}
	s := New(testProg(false))
	startWarp(s, 0)
	s.CallBegin(0, 0, 10, 1, 2, rf.vals)
	s.SpillStore(0, 1, 1, 16, 0, fullMask, lanes(3, 1, 4))
	s.SpillStore(0, 1, 2, 17, 4, fullMask, lanes(1, 5, 9))
	s.SpillFill(0, 1, 8, 16, 0, fullMask, lanes(3, 1, 4))
	s.SpillFill(0, 1, 9, 17, 4, fullMask, lanes(1, 5, 9))
	s.Return(0, 1, 10, 0, 0, rf.vals)
	wantClean(t, s)
}

func TestSpillBytesObserved(t *testing.T) {
	rf := regFile{}
	s := New(testProg(false))
	startWarp(s, 0)
	s.CallBegin(0, 0, 10, 1, 2, rf.vals)
	s.SpillStore(0, 1, 1, 16, 0, fullMask, lanes(1))
	s.SpillStore(0, 1, 2, 17, 4, fullMask, lanes(2))
	obs := s.Observations()
	var leaf *FuncObs
	for i := range obs.Funcs {
		if obs.Funcs[i].Func == "leaf" {
			leaf = &obs.Funcs[i]
		}
	}
	if leaf == nil || leaf.MaxSpillBytes != 8 || leaf.Calls != 1 {
		t.Errorf("leaf observations wrong: %+v", obs.Funcs)
	}
}

func TestStackMismatch(t *testing.T) {
	s := New(testProg(true))
	startWarp(s, 8)
	s.CallBegin(0, 0, 10, 1, 2, regFile{}.vals)
	// Architectural pointers disagree with the shadow's RFP/RSP=1/1.
	s.CallEnd(0, 2, 3)
	wantKind(t, s, KindStackMismatch)
}

func TestCallUnderflow(t *testing.T) {
	s := New(testProg(true))
	startWarp(s, 8)
	s.Return(0, 1, 20, 0, 0, regFile{}.vals)
	wantKind(t, s, KindCallUnderflow)
}

func TestTrapDivergence(t *testing.T) {
	s := New(testProg(true))
	startWarp(s, 8)
	// No call in flight predicts a spill: any trap slot is divergent.
	s.TrapSlot(0, false, 0, lanes(1))
	wantKind(t, s, KindTrapDivergence)
}

func TestTrapRoundTrip(t *testing.T) {
	// A stack of 2 slots forces the first frame out when the second
	// call needs space: the shadow must predict the spill, match the
	// fill on return, and stay silent for the faithful sequence.
	s := New(testProg(true))
	rf := regFile{}
	startWarp(s, 2)
	enterLeaf(s, rf)                    // frame [0,2): saved-RFP + 1 push
	s.CallBegin(0, 1, 5, 1, 2, rf.vals) // needs 2 slots: spills frame [0,2)
	s.TrapSlot(0, false, 0, lanes(7))   // predicted spill, slot 0
	s.TrapSlot(0, false, 1, lanes(8))   // predicted spill, slot 1
	s.CallEnd(0, 3, 3)                  // shadow Call: RFP=RSP=3
	s.StackPush(0, 1, 0, 1, 3, 4)       // frame [2,4)
	s.StackPop(0, 1, 8, 1, 3, 3)        // callee pops before return
	s.TrapSlot(0, true, 0, lanes(7))    // fill back frame [0,2)
	s.TrapSlot(0, true, 1, lanes(8))    // values intact
	s.Return(0, 1, 9, 1, 2, rf.vals)    // rewind into the outer frame
	wantClean(t, s)

	// Same sequence, but the fill returns a corrupted value.
	s = New(testProg(true))
	startWarp(s, 2)
	enterLeaf(s, rf)
	s.CallBegin(0, 1, 5, 1, 2, rf.vals)
	s.TrapSlot(0, false, 0, lanes(7))
	s.TrapSlot(0, false, 1, lanes(8))
	s.CallEnd(0, 3, 3)
	s.StackPush(0, 1, 0, 1, 3, 4)
	s.StackPop(0, 1, 8, 1, 3, 3)
	s.TrapSlot(0, true, 0, lanes(666)) // not what was spilled
	s.TrapSlot(0, true, 1, lanes(8))
	s.Return(0, 1, 9, 1, 2, rf.vals)
	wantKind(t, s, KindStaleFill)
}

func TestDiagDedup(t *testing.T) {
	s := New(testProg(false))
	startWarp(s, 0)
	for i := 0; i < 100; i++ {
		s.RegRead(0, 0, 4, isa.OpIAdd, 20, fullMask)
	}
	ds := s.Diags()
	if len(ds) != 1 {
		t.Fatalf("expected one deduplicated diagnostic, got %d", len(ds))
	}
	if ds[0].Count != 100 {
		t.Errorf("count = %d, want 100", ds[0].Count)
	}
	if !strings.Contains(ds[0].String(), "x100") {
		t.Errorf("String() omits the repeat count: %s", ds[0])
	}
}

func TestObservationsSorted(t *testing.T) {
	s := New(testProg(true))
	startWarp(s, 8)
	s.CallBegin(0, 0, 1, 1, 2, regFile{}.vals)
	obs := s.Observations()
	for i := 1; i < len(obs.Funcs); i++ {
		if obs.Funcs[i-1].Func > obs.Funcs[i].Func {
			t.Errorf("Funcs not sorted: %v", obs.Funcs)
		}
	}
}
