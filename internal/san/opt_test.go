package san_test

import (
	"context"
	"io"
	"strings"
	"testing"

	"carsgo/internal/abi"
	"carsgo/internal/opt"
	"carsgo/internal/san"
	"carsgo/internal/spec"
	"carsgo/internal/workloads"
)

// A fast subset of the optimize→simulate differential: the full
// registry × mode matrix runs in `make opt` and CI; here three small
// workloads (including the recursive one) keep the unit suite quick.
func TestOptDiffSubset(t *testing.T) {
	if opt.Weakened() {
		t.Skip("optweaken build: the oracle is supposed to fail; see TestOptWeakenedCaught")
	}
	results, ok, err := san.OptDiffWorkloads(context.Background(),
		[]string{"FIB", "NBD", "LULESH"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		for _, r := range results {
			for _, f := range r.Failures {
				t.Errorf("%s/%s: %s", r.Workload, r.Mode, f)
			}
		}
		t.Fatal("optimize→simulate differential failed")
	}
	certs := 0
	for _, r := range results {
		certs += len(r.Certs)
	}
	if certs == 0 {
		t.Error("no certificates applied: the differential ran the same program twice")
	}
}

// The spec-corpus path: a generated spec optimizes and diffs through
// the same oracle via the FromSpec bridge.
func TestOptDiffSpec(t *testing.T) {
	if opt.Weakened() {
		t.Skip("optweaken build")
	}
	s := spec.Generate(7)
	for _, mode := range abi.Modes {
		res, err := san.OptDiffWorkload(context.Background(), workloads.FromSpec(s), mode)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !res.OK() {
			t.Errorf("%s: %s", mode, strings.Join(res.Failures, "; "))
		}
	}
}

// Under -tags optweaken the optimizer carries a planted next-def-kills
// bug; the differential oracle must catch it on the registry, or the
// oracle proves nothing. The sound build skips this (the plant is
// absent); carsopt -selftest and `make opt` run the weakened build.
func TestOptWeakenedCaught(t *testing.T) {
	if !opt.Weakened() {
		t.Skip("sound build: no plant to catch (run with -tags optweaken)")
	}
	caught := false
	for _, name := range []string{"FIB", "NBD", "LULESH", "MST"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := san.OptDiffWorkload(context.Background(), w, abi.Baseline)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Skipped && len(res.Failures) > 0 {
			caught = true
			break
		}
	}
	if !caught {
		t.Fatal("planted unsound rewrite survived the differential oracle")
	}
}
