// Package san is the CARS shadow sanitizer: a sim.Monitor that keeps
// an independent shadow model of the architectural machine — per-lane
// register initialization bits, a mirrored register stack with its own
// RFP/RSP, per-frame spill-slot records, and the circular-stack spill
// window contents — and cross-checks every observed transition against
// it. Divergences surface as structured diagnostics:
//
//   - uninit-read:     a register (or renamed stack slot) is consumed
//     on a lane no path has written
//   - abi-clobber:     a callee returns with a caller-visible
//     callee-saved register changed, or writes outside its renamed
//     window
//   - stale-fill:      a spill fill reads memory the matching store
//     never wrote (wrong value, wrong slot, or never stored)
//   - spill-pair:      a fill restores a different register than its
//     frame's store saved at that offset
//   - stack-mismatch:  the architectural RFP/RSP disagree with the
//     shadow stack after a call, return, PUSH, or POP
//   - trap-divergence: the circular-stack trap spilled or filled slots
//     the shadow's own EnsureSpace/Ret did not predict
//   - call-underflow:  a return with no matching call frame
//
// The sanitizer also collects dynamic observations (per-function peak
// rename depth and spill traffic, per-kernel peak RSP and trap slot
// counts) that the differential harness (diff.go) checks against
// internal/vet's static bounds: every static bound must dominate what
// the machine actually did.
package san

import (
	"fmt"
	"sort"

	"carsgo/internal/cars"
	"carsgo/internal/isa"
	"carsgo/internal/sim"
)

// Kind classifies a sanitizer diagnostic.
type Kind string

const (
	KindUninitRead     Kind = "uninit-read"
	KindABIClobber     Kind = "abi-clobber"
	KindStaleFill      Kind = "stale-fill"
	KindSpillPair      Kind = "spill-pair"
	KindStackMismatch  Kind = "stack-mismatch"
	KindTrapDivergence Kind = "trap-divergence"
	KindCallUnderflow  Kind = "call-underflow"
	// KindSharedRace: two distinct threads touch the same shared-memory
	// word in the same barrier interval, at least one writing, and both
	// accesses are user (non-spill) traffic.
	KindSharedRace Kind = "shared-race"
	// KindSpillRace: as above but at least one access is ABI spill
	// traffic — user STS/LDS trespassing into spill frames (or a
	// spill-pointer bug making frames collide).
	KindSpillRace Kind = "spill-race"
	// KindBarrierDivergence: a warp arrives at BAR.SYNC with a partial
	// active mask, or warps of one block wait at different barriers.
	KindBarrierDivergence Kind = "barrier-divergence"
	// KindOccupancyDivergence: the simulator's block admit/retire events
	// are inconsistent with each other (resident-warp bookkeeping drift).
	KindOccupancyDivergence Kind = "occupancy-divergence"
)

// Diag is one deduplicated sanitizer finding: the first occurrence's
// message plus how many times the same (kind, function, pc) fired.
type Diag struct {
	Kind  Kind   `json:"kind"`
	Func  string `json:"func"`
	PC    int    `json:"pc"`
	Msg   string `json:"msg"`
	Count uint64 `json:"count"`
}

func (d Diag) String() string {
	s := fmt.Sprintf("%s: %s", d.Kind, d.Msg)
	if d.Count > 1 {
		s += fmt.Sprintf(" (x%d)", d.Count)
	}
	return s
}

// FuncObs is the dynamic per-function counterpart of vet.FuncReport.
type FuncObs struct {
	Func string `json:"func"`
	// Calls counts dynamic activations (warp-granular).
	Calls uint64 `json:"calls"`
	// MaxStackDepth is the peak renamed register count (RSP-RFP) any
	// activation reached; vet's FuncReport.MaxStackDepth must dominate.
	MaxStackDepth int `json:"maxStackDepth"`
	// MaxSpillBytes is the peak ABI spill-store traffic of a single
	// activation; vet's FuncReport.SpillBytes must dominate when finite.
	MaxSpillBytes int `json:"maxSpillBytes"`
	// MaxSpillStores/MaxSpillFills count spill-flagged instruction
	// executions in a single activation (callees excluded); vet's
	// FuncReport.Cost spill bounds must dominate when finite.
	MaxSpillStores int `json:"maxSpillStores"`
	MaxSpillFills  int `json:"maxSpillFills"`
	// MaxLocalBytes/MaxSharedBytes count architectural local/shared
	// traffic (4 bytes per executed access, spills included, trap
	// traffic excluded) in a single activation; vet's FuncReport.Cost
	// byte bounds must dominate when finite.
	MaxLocalBytes  int `json:"maxLocalBytes"`
	MaxSharedBytes int `json:"maxSharedBytes"`
}

// KernelObs is the dynamic per-kernel counterpart of vet.KernelReport.
type KernelObs struct {
	Kernel string `json:"kernel"`
	// MaxRSP is the highest absolute register-stack pointer any warp of
	// the kernel reached; vet's KernelReport.StackSlots must dominate.
	MaxRSP int `json:"maxRSP"`
	// TrapSpillSlots/TrapFillSlots count circular-stack trap traffic;
	// both must be zero when vet proves the trap unreachable.
	TrapSpillSlots uint64 `json:"trapSpillSlots"`
	TrapFillSlots  uint64 `json:"trapFillSlots"`
	// SharedRaces/SpillRaces/BarrierDivergences count dynamic race-
	// detector events; SharedRaces and BarrierDivergences must be zero
	// when vet reports the kernel RaceFree/BarrierSafe.
	SharedRaces        uint64 `json:"sharedRaces"`
	SpillRaces         uint64 `json:"spillRaces"`
	BarrierDivergences uint64 `json:"barrierDivergences"`
	// MaxWarp* are the largest per-warp cumulative traffic totals over
	// one kernel activation (all frames, trap traffic excluded); vet's
	// per-kernel interprocedural cost bounds must dominate when finite.
	MaxWarpSpillStores uint64 `json:"maxWarpSpillStores"`
	MaxWarpSpillFills  uint64 `json:"maxWarpSpillFills"`
	MaxWarpLocalBytes  uint64 `json:"maxWarpLocalBytes"`
	MaxWarpSharedBytes uint64 `json:"maxWarpSharedBytes"`
	// Spill-policy lattice accounting. SmemTxns totals bank-serialised
	// shared-memory transactions and RFCacheHits the spill accesses the
	// RF-cache window absorbed; both mirror the simulator's own
	// counters and must match them exactly on single-kernel launches.
	// The MaxWarp* pair are the largest per-warp cumulative totals over
	// one kernel activation: vet's per-backend transaction and
	// residual-spill-traffic bounds must dominate them when finite.
	SmemTxns              uint64 `json:"smemTxns"`
	RFCacheHits           uint64 `json:"rfCacheHits"`
	MaxWarpSmemTxns       uint64 `json:"maxWarpSmemTxns"`
	MaxWarpSmemSpillBytes uint64 `json:"maxWarpSmemSpillBytes"`
	// ResidentWarps is the warp occupancy a single SM reached during a
	// launch's opening admission wave (admissions before the first warp
	// exit), tracked independently from the simulator's own statistic;
	// vet's static occupancy model predicts it exactly.
	ResidentWarps int `json:"residentWarps"`
}

// Observations bundles everything the sanitizer measured, sorted by
// function name for deterministic output.
type Observations struct {
	Funcs   []FuncObs   `json:"funcs"`
	Kernels []KernelObs `json:"kernels"`
}

const (
	fullMask = ^uint32(0)
	// maxDiags bounds distinct findings so a badly broken program cannot
	// exhaust memory; repeats of known findings still count.
	maxDiags = 1024
)

type diagKey struct {
	kind Kind
	fn   int
	pc   int
}

// spillRec is one frame's record of an ABI spill store: which register
// was saved at a local/shared frame offset, with the stored lane values.
type spillRec struct {
	reg   uint8
	lanes uint32
	vals  [isa.WarpSize]uint32
}

// sanFrame shadows one activation record: the function running in it,
// its spill-slot contents, and the caller's callee-saved register
// snapshot taken at the call (compared on return).
type sanFrame struct {
	fn          int
	callPC      int
	spillBytes  int
	spillStores int
	spillFills  int
	localBytes  int
	sharedBytes int
	spills      map[int32]*spillRec
	// snap holds the caller's R16.. values at the call, bounded by the
	// caller's own RegsUsed (registers above that are not the caller's:
	// under per-launch allocation they may not even be in this warp's
	// arena).
	snap [][isa.WarpSize]uint32
	// savedInit holds the caller's initialization bits for the callee's
	// declared window R16..R16+CalleeSaved-1 (baseline/shared-spill):
	// the callee must write-before-read inside its window, so the bits
	// are cleared for the activation and restored on return.
	savedInit []uint32
}

// warpShadow is the shadow machine state of one warp.
type warpShadow struct {
	kernelFn int

	// shadow mirrors the warp's CARS register stack (CARS mode only).
	shadow cars.Stack

	// static holds per-lane initialization bits for raw (un-renamed)
	// architectural registers. R0..R15 are defined at warp start
	// (zeroed, then parameters); everything above starts uninitialized.
	static [isa.MaxArchRegs]uint32

	// slotInit holds per-lane initialization bits for renamed register-
	// stack slots, keyed by absolute slot index (PUSH clears the fresh
	// slots; trap spill/fill round-trips leave them untouched).
	slotInit map[int]uint32

	// spillMem records trap-spilled slot values by absolute slot, so
	// the matching fill can be checked for staleness.
	spillMem map[int]*[isa.WarpSize]uint32

	// expectSpill queues the absolute slots the shadow's EnsureSpace
	// predicts the trap will spill for the in-flight call.
	expectSpill []int

	// pendingFills buffers trap fill slots observed during a return
	// (they fire before the Return hook) for reconciliation against the
	// shadow's own Ret.
	pendingFills []int

	frames []*sanFrame

	// Cumulative traffic totals for this kernel activation (the dynamic
	// side of vet's interprocedural per-kernel cost bounds).
	spillStores uint64
	spillFills  uint64
	localBytes  uint64
	sharedBytes uint64
	// Per-activation lattice accounting: serialised shared-memory
	// transactions and spill shared bytes the RF cache did not absorb.
	smemTxns      uint64
	smemSpillByte uint64

	// blockID/wInBlock locate the warp within its block; startMask is
	// the launch-time active mask a convergent BAR.SYNC must present.
	blockID   int
	wInBlock  int
	startMask uint32
}

// Sanitizer implements sim.Monitor. Attach with gpu.San = san.New(prog)
// before Run; it is not safe for concurrent GPUs (use one per GPU).
type Sanitizer struct {
	prog *isa.Program

	warps   map[int]*warpShadow
	blocks  map[int]*blockShadow
	funcs   map[int]*FuncObs
	kernels map[int]*KernelObs
	diags   map[diagKey]*Diag

	framePool []*sanFrame

	// lastKernelFn attributes block admissions: BlockAdmit fires at the
	// end of admitBlock, after the block's WarpStart events.
	lastKernelFn int
	// admitted tracks live blocks (ID → SM and warp count) and resident
	// the per-SM resident-warp tally the admit/retire events imply, so
	// the hooks can be cross-checked for drift.
	admitted map[int]admitRec
	resident map[int]int
	// waveOpen mirrors the simulator's opening-admission-wave window:
	// it opens when a launch's first block is admitted (the admission
	// table is empty between launches) and closes at the first warp
	// exit. Only admissions inside the window update ResidentWarps.
	waveOpen bool
}

// admitRec remembers where a block was admitted and how many of its
// warps are still unfinished, for the exit/retire-side bookkeeping.
type admitRec struct {
	sm   int
	left int
}

var _ sim.Monitor = (*Sanitizer)(nil)

// New builds a sanitizer for one linked program.
func New(prog *isa.Program) *Sanitizer {
	return &Sanitizer{
		prog:         prog,
		warps:        make(map[int]*warpShadow),
		blocks:       make(map[int]*blockShadow),
		funcs:        make(map[int]*FuncObs),
		kernels:      make(map[int]*KernelObs),
		diags:        make(map[diagKey]*Diag),
		lastKernelFn: -1,
		admitted:     make(map[int]admitRec),
		resident:     make(map[int]int),
	}
}

// Diags returns the deduplicated findings sorted by (kind, func, pc).
func (s *Sanitizer) Diags() []Diag {
	out := make([]Diag, 0, len(s.diags))
	for _, d := range s.diags {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if out[i].Func != out[j].Func {
			return out[i].Func < out[j].Func
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// Observations returns the dynamic measurements sorted by name.
func (s *Sanitizer) Observations() Observations {
	var obs Observations
	for _, f := range s.funcs {
		obs.Funcs = append(obs.Funcs, *f)
	}
	for _, k := range s.kernels {
		obs.Kernels = append(obs.Kernels, *k)
	}
	sort.Slice(obs.Funcs, func(i, j int) bool { return obs.Funcs[i].Func < obs.Funcs[j].Func })
	sort.Slice(obs.Kernels, func(i, j int) bool { return obs.Kernels[i].Kernel < obs.Kernels[j].Kernel })
	return obs
}

func (s *Sanitizer) funcName(fn int) string {
	if fn >= 0 && fn < len(s.prog.Funcs) {
		return s.prog.Funcs[fn].Name
	}
	return fmt.Sprintf("func#%d", fn)
}

func (s *Sanitizer) report(kind Kind, fn, pc int, format string, args ...any) {
	key := diagKey{kind, fn, pc}
	if d, ok := s.diags[key]; ok {
		d.Count++
		return
	}
	if len(s.diags) >= maxDiags {
		return
	}
	s.diags[key] = &Diag{
		Kind:  kind,
		Func:  s.funcName(fn),
		PC:    pc,
		Msg:   fmt.Sprintf(format, args...),
		Count: 1,
	}
}

func (s *Sanitizer) funcObs(fn int) *FuncObs {
	o := s.funcs[fn]
	if o == nil {
		o = &FuncObs{Func: s.funcName(fn)}
		s.funcs[fn] = o
	}
	return o
}

func (s *Sanitizer) kernelObs(fn int) *KernelObs {
	o := s.kernels[fn]
	if o == nil {
		o = &KernelObs{Kernel: s.funcName(fn)}
		s.kernels[fn] = o
	}
	return o
}

func (s *Sanitizer) newFrame(fn, callPC int) *sanFrame {
	var fr *sanFrame
	if n := len(s.framePool); n > 0 {
		fr = s.framePool[n-1]
		s.framePool = s.framePool[:n-1]
		for k := range fr.spills {
			delete(fr.spills, k)
		}
		fr.snap = fr.snap[:0]
		fr.savedInit = fr.savedInit[:0]
		fr.spillBytes = 0
		fr.spillStores, fr.spillFills = 0, 0
		fr.localBytes, fr.sharedBytes = 0, 0
	} else {
		fr = &sanFrame{spills: make(map[int32]*spillRec)}
	}
	fr.fn, fr.callPC = fn, callPC
	return fr
}

func (s *Sanitizer) freeFrame(fr *sanFrame) {
	if len(s.framePool) < 64 {
		s.framePool = append(s.framePool, fr)
	}
}

func (w *warpShadow) top() *sanFrame { return w.frames[len(w.frames)-1] }

// WarpStart resets the warp's shadow to the fresh architectural state:
// R0..R15 defined on all lanes (zeroed registers plus parameters), an
// empty register stack, and a base frame attributing kernel-level
// spills to the kernel function.
func (s *Sanitizer) WarpStart(gwid, blockID, wInBlock, fn, stackSlots int, active uint32) {
	w := s.warps[gwid]
	if w == nil {
		w = &warpShadow{
			slotInit: make(map[int]uint32),
			spillMem: make(map[int]*[isa.WarpSize]uint32),
		}
		s.warps[gwid] = w
	} else {
		for k := range w.slotInit {
			delete(w.slotInit, k)
		}
		for k := range w.spillMem {
			delete(w.spillMem, k)
		}
		w.expectSpill = w.expectSpill[:0]
		w.pendingFills = w.pendingFills[:0]
		for _, fr := range w.frames {
			s.freeFrame(fr)
		}
		w.frames = w.frames[:0]
	}
	w.kernelFn = fn
	s.lastKernelFn = fn
	w.spillStores, w.spillFills = 0, 0
	w.localBytes, w.sharedBytes = 0, 0
	w.smemTxns, w.smemSpillByte = 0, 0
	w.blockID, w.wInBlock, w.startMask = blockID, wInBlock, active
	if wInBlock == 0 {
		// Warp 0 of a block is always initialized first: a fresh (or
		// reused) block slot starts a new shared-memory epoch.
		s.resetBlock(blockID)
	}
	w.shadow.Reset(stackSlots)
	for r := 0; r < isa.MaxArchRegs; r++ {
		if r < isa.FirstCalleeSaved {
			w.static[r] = fullMask
		} else {
			w.static[r] = 0
		}
	}
	w.frames = append(w.frames, s.newFrame(fn, -1))
	s.kernelObs(fn)
	s.funcObs(fn).Calls++
}

// renamed reports whether register r resolves through the warp's
// register-stack window, and to which absolute slot.
func (w *warpShadow) renamed(r uint8) (abs int, ok, outside bool) {
	if int(r) < isa.FirstCalleeSaved || w.shadow.Depth() == 0 {
		return 0, false, false
	}
	k := int(r) - isa.FirstCalleeSaved
	if k >= w.shadow.RenameLen() {
		// Inside a device function every callee-saved access must land
		// in the frame's renamed window; falling through to the raw
		// register would touch another activation's state.
		return 0, false, true
	}
	return w.shadow.RFP + k, true, false
}

// RegRead checks per-lane initialization for a consumed register.
func (s *Sanitizer) RegRead(gwid, fn, pc int, op isa.Op, r uint8, lanes uint32) {
	w := s.warps[gwid]
	if w == nil || lanes == 0 {
		return
	}
	if abs, ok, outside := w.renamed(r); outside {
		s.report(KindUninitRead, fn, pc,
			"%s reads R%d outside the frame's renamed window (%d register(s) pushed)",
			op, r, w.shadow.RenameLen())
		return
	} else if ok {
		if missing := lanes &^ w.slotInit[abs]; missing != 0 {
			s.report(KindUninitRead, fn, pc,
				"%s reads R%d before any write in this frame (lanes %#08x)", op, r, missing)
		}
		return
	}
	if missing := lanes &^ w.static[r]; missing != 0 {
		s.report(KindUninitRead, fn, pc,
			"%s reads R%d before any write (lanes %#08x)", op, r, missing)
	}
}

// RegWrite marks lanes initialized (and flags out-of-window writes).
func (s *Sanitizer) RegWrite(gwid, fn, pc int, r uint8, lanes uint32) {
	w := s.warps[gwid]
	if w == nil || lanes == 0 {
		return
	}
	if abs, ok, outside := w.renamed(r); outside {
		s.report(KindABIClobber, fn, pc,
			"write to R%d outside the frame's renamed window (%d register(s) pushed): clobbers caller state",
			r, w.shadow.RenameLen())
		w.static[r] |= lanes // keep modeling so one bug does not cascade
		return
	} else if ok {
		w.slotInit[abs] |= lanes
		return
	}
	// Without renaming, a device function writing above its declared
	// window physically clobbers its caller's register.
	if !s.prog.CARS && int(r) >= isa.FirstCalleeSaved && fn >= 0 && fn < len(s.prog.Funcs) {
		if f := s.prog.Funcs[fn]; !f.IsKernel && int(r) >= isa.FirstCalleeSaved+f.CalleeSaved {
			s.report(KindABIClobber, fn, pc,
				"write to R%d outside the function's declared callee-saved window (callee_saved=%d)",
				r, f.CalleeSaved)
		}
	}
	w.static[r] |= lanes
}

// CallBegin snapshots the caller-visible callee-saved registers, opens
// the callee's shadow frame, and (under CARS) predicts the trap spills
// the free-register check will inject.
func (s *Sanitizer) CallBegin(gwid, fn, pc, callee, fru int, regs sim.RegVals) {
	w := s.warps[gwid]
	if w == nil {
		return
	}
	s.funcObs(callee).Calls++
	fr := s.newFrame(callee, pc)
	// Snapshot only the caller's own callee-saved registers: the warp's
	// register allocation is sized to the launched kernel's call graph,
	// so anything above the caller's RegsUsed is not caller state.
	hi := isa.FirstCalleeSaved
	if fn >= 0 && fn < len(s.prog.Funcs) && s.prog.Funcs[fn].RegsUsed > hi {
		hi = s.prog.Funcs[fn].RegsUsed
	}
	for r := isa.FirstCalleeSaved; r < hi; r++ {
		fr.snap = append(fr.snap, *regs(uint8(r)))
	}
	if !s.prog.CARS && callee >= 0 && callee < len(s.prog.Funcs) {
		// The callee owns R16..R16+CalleeSaved-1 for this activation and
		// must write each before reading it (the ABI rule that makes
		// CARS renaming transparent): clear the window's initialization
		// bits and restore the caller's view on return.
		for k := 0; k < s.prog.Funcs[callee].CalleeSaved; k++ {
			r := isa.FirstCalleeSaved + k
			if r >= isa.MaxArchRegs {
				break
			}
			fr.savedInit = append(fr.savedInit, w.static[r])
			w.static[r] = 0
		}
	}
	if s.prog.CARS {
		ops, err := w.shadow.EnsureSpace(fru)
		if err != nil {
			s.report(KindStackMismatch, fn, pc, "shadow free-register check failed: %v", err)
		}
		for _, op := range ops {
			for i := 0; i < op.Count; i++ {
				w.expectSpill = append(w.expectSpill, op.StartSlot+i)
			}
		}
	}
	w.frames = append(w.frames, fr)
}

// CallEnd advances the shadow stack past the call and checks the
// architectural RFP/RSP against it.
func (s *Sanitizer) CallEnd(gwid, rfp, rsp int) {
	w := s.warps[gwid]
	if w == nil || !s.prog.CARS {
		return
	}
	fr := w.top()
	if n := len(w.expectSpill); n > 0 {
		s.report(KindTrapDivergence, fr.fn, fr.callPC,
			"call expected %d more trap spill slot(s) that never happened", n)
		w.expectSpill = w.expectSpill[:0]
	}
	w.shadow.Call()
	w.slotInit[w.shadow.RSP-1] = fullMask // the saved-RFP slot
	if rfp != w.shadow.RFP || rsp != w.shadow.RSP {
		s.report(KindStackMismatch, fr.fn, fr.callPC,
			"after call: architectural RFP/RSP %d/%d, shadow %d/%d", rfp, rsp, w.shadow.RFP, w.shadow.RSP)
	}
	ko := s.kernelObs(w.kernelFn)
	if rsp > ko.MaxRSP {
		ko.MaxRSP = rsp
	}
}

// Return checks the callee against its activation record: the caller's
// callee-saved registers must be intact, the shadow stack must rewind
// to the same RFP/RSP, and any trap fills must match the shadow's
// prediction.
func (s *Sanitizer) Return(gwid, fn, pc, rfp, rsp int, regs sim.RegVals) {
	w := s.warps[gwid]
	if w == nil {
		return
	}
	if len(w.frames) <= 1 {
		s.report(KindCallUnderflow, fn, pc, "return with no open call frame")
		w.pendingFills = w.pendingFills[:0]
		return
	}
	fr := w.top()
	w.frames = w.frames[:len(w.frames)-1]
	if fr.fn != fn {
		s.report(KindCallUnderflow, fn, pc,
			"return from %s but the innermost activation is %s", s.funcName(fn), s.funcName(fr.fn))
	}
	if s.prog.CARS {
		fill, err := w.shadow.Ret()
		if err != nil {
			s.report(KindStackMismatch, fn, pc, "shadow return failed: %v", err)
		}
		var expect []int
		if fill != nil {
			for i := 0; i < fill.Count; i++ {
				expect = append(expect, fill.StartSlot+i)
			}
		}
		if !equalInts(w.pendingFills, expect) {
			s.report(KindTrapDivergence, fn, pc,
				"return filled trap slots %v, shadow predicted %v", w.pendingFills, expect)
		}
		w.pendingFills = w.pendingFills[:0]
		if rfp != w.shadow.RFP || rsp != w.shadow.RSP {
			s.report(KindStackMismatch, fn, pc,
				"after return: architectural RFP/RSP %d/%d, shadow %d/%d", rfp, rsp, w.shadow.RFP, w.shadow.RSP)
		}
	}
	for i, snap := range fr.snap {
		r := isa.FirstCalleeSaved + i
		cur := regs(uint8(r))
		if *cur != snap {
			lanes := uint32(0)
			for l := 0; l < isa.WarpSize; l++ {
				if cur[l] != snap[l] {
					lanes |= 1 << l
				}
			}
			s.report(KindABIClobber, fn, pc,
				"callee-saved R%d changed across the call (lanes %#08x)", r, lanes)
		}
	}
	for k, bits := range fr.savedInit {
		w.static[isa.FirstCalleeSaved+k] = bits
	}
	s.freeFrame(fr)
}

// StackPush mirrors the PUSH micro-op: fresh renamed slots start
// uninitialized, and the architectural pointers must track the shadow.
func (s *Sanitizer) StackPush(gwid, fn, pc, n, rfp, rsp int) {
	w := s.warps[gwid]
	if w == nil || !s.prog.CARS {
		return
	}
	old := w.shadow.RSP
	if err := w.shadow.Push(n); err != nil {
		s.report(KindStackMismatch, fn, pc, "shadow PUSH failed: %v", err)
		return
	}
	for abs := old; abs < w.shadow.RSP; abs++ {
		delete(w.slotInit, abs)
	}
	if rfp != w.shadow.RFP || rsp != w.shadow.RSP {
		s.report(KindStackMismatch, fn, pc,
			"after PUSH %d: architectural RFP/RSP %d/%d, shadow %d/%d", n, rfp, rsp, w.shadow.RFP, w.shadow.RSP)
	}
	o := s.funcObs(fn)
	if depth := rsp - rfp; depth > o.MaxStackDepth {
		o.MaxStackDepth = depth
	}
	ko := s.kernelObs(w.kernelFn)
	if rsp > ko.MaxRSP {
		ko.MaxRSP = rsp
	}
}

// StackPop mirrors the POP micro-op.
func (s *Sanitizer) StackPop(gwid, fn, pc, n, rfp, rsp int) {
	w := s.warps[gwid]
	if w == nil || !s.prog.CARS {
		return
	}
	if err := w.shadow.Pop(n); err != nil {
		s.report(KindStackMismatch, fn, pc, "shadow POP failed: %v", err)
		return
	}
	if rfp != w.shadow.RFP || rsp != w.shadow.RSP {
		s.report(KindStackMismatch, fn, pc,
			"after POP %d: architectural RFP/RSP %d/%d, shadow %d/%d", n, rfp, rsp, w.shadow.RFP, w.shadow.RSP)
	}
}

// SpillStore records an ABI spill store in the current activation's
// frame and charges its traffic to the function's dynamic spill bound.
func (s *Sanitizer) SpillStore(gwid, fn, pc int, r uint8, off int32, lanes uint32, vals *[isa.WarpSize]uint32) {
	w := s.warps[gwid]
	if w == nil {
		return
	}
	fr := w.top()
	fr.spillBytes += 4
	o := s.funcObs(fr.fn)
	if fr.spillBytes > o.MaxSpillBytes {
		o.MaxSpillBytes = fr.spillBytes
	}
	fr.spillStores++
	if fr.spillStores > o.MaxSpillStores {
		o.MaxSpillStores = fr.spillStores
	}
	w.spillStores++
	if ko := s.kernelObs(w.kernelFn); w.spillStores > ko.MaxWarpSpillStores {
		ko.MaxWarpSpillStores = w.spillStores
	}
	rec := fr.spills[off]
	if rec == nil || rec.reg != r {
		rec = &spillRec{reg: r}
		fr.spills[off] = rec
	}
	rec.lanes |= lanes
	for l := 0; l < isa.WarpSize; l++ {
		if lanes&(1<<l) != 0 {
			rec.vals[l] = vals[l]
		}
	}
}

// SpillFill checks an ABI spill fill against the frame's store record:
// same offset, same register, same lane values.
func (s *Sanitizer) SpillFill(gwid, fn, pc int, r uint8, off int32, lanes uint32, vals *[isa.WarpSize]uint32) {
	w := s.warps[gwid]
	if w == nil {
		return
	}
	fr := w.top()
	fr.spillFills++
	if o := s.funcObs(fr.fn); fr.spillFills > o.MaxSpillFills {
		o.MaxSpillFills = fr.spillFills
	}
	w.spillFills++
	if ko := s.kernelObs(w.kernelFn); w.spillFills > ko.MaxWarpSpillFills {
		ko.MaxWarpSpillFills = w.spillFills
	}
	rec := fr.spills[off]
	if rec == nil {
		s.report(KindStaleFill, fn, pc,
			"fill of R%d from frame offset %d that this activation never stored", r, off)
		return
	}
	if rec.reg != r {
		s.report(KindSpillPair, fn, pc,
			"frame offset %d stored R%d but fills R%d", off, rec.reg, r)
	}
	if stale := lanes &^ rec.lanes; stale != 0 {
		s.report(KindStaleFill, fn, pc,
			"fill of R%d reads lanes %#08x the matching store never wrote", r, stale)
	}
	var bad uint32
	for l := 0; l < isa.WarpSize; l++ {
		if lanes&rec.lanes&(1<<l) != 0 && vals[l] != rec.vals[l] {
			bad |= 1 << l
		}
	}
	if bad != 0 {
		s.report(KindStaleFill, fn, pc,
			"fill of R%d from frame offset %d returns values the store did not write (lanes %#08x)", r, off, bad)
	}
}

// TrapSlot checks one circular-stack trap transfer: spills must follow
// the shadow's EnsureSpace prediction and record the slot's values;
// fills must return exactly what was spilled.
func (s *Sanitizer) TrapSlot(gwid int, fill bool, abs int, vals *[isa.WarpSize]uint32) {
	w := s.warps[gwid]
	if w == nil {
		return
	}
	ko := s.kernelObs(w.kernelFn)
	fr := w.top()
	if fill {
		ko.TrapFillSlots++
		if rec := w.spillMem[abs]; rec == nil {
			s.report(KindStaleFill, fr.fn, -1,
				"trap fill of absolute slot %d that was never spilled", abs)
		} else {
			if *rec != *vals {
				s.report(KindStaleFill, fr.fn, -1,
					"trap fill of absolute slot %d returns values the spill did not write", abs)
			}
			delete(w.spillMem, abs)
		}
		w.pendingFills = append(w.pendingFills, abs)
		return
	}
	ko.TrapSpillSlots++
	if len(w.expectSpill) == 0 || w.expectSpill[0] != abs {
		s.report(KindTrapDivergence, fr.fn, fr.callPC,
			"trap spilled absolute slot %d, shadow predicted %v", abs, headInts(w.expectSpill))
	} else {
		w.expectSpill = w.expectSpill[1:]
	}
	cp := *vals
	w.spillMem[abs] = &cp
}

// LocalAccess charges one architectural local access (4 bytes) to the
// current activation and to the warp's kernel total. Spill-flagged
// accesses are already counted by SpillStore/SpillFill; here they only
// contribute bytes, matching vet's localBytes bound.
func (s *Sanitizer) LocalAccess(gwid, fn, pc int, store, spill bool, lanes uint32) {
	w := s.warps[gwid]
	if w == nil {
		return
	}
	fr := w.top()
	fr.localBytes += 4
	if o := s.funcObs(fr.fn); fr.localBytes > o.MaxLocalBytes {
		o.MaxLocalBytes = fr.localBytes
	}
	w.localBytes += 4
	if ko := s.kernelObs(w.kernelFn); w.localBytes > ko.MaxWarpLocalBytes {
		ko.MaxWarpLocalBytes = w.localBytes
	}
}

// SharedTxn accumulates one shared access's bank-serialisation and
// RF-cache-absorption accounting: the dynamic side of vet's
// per-backend transaction and residual-spill-traffic bounds.
func (s *Sanitizer) SharedTxn(gwid, blockID int, store, spill bool, txns int, absorbed bool) {
	w := s.warps[gwid]
	if w == nil {
		return
	}
	ko := s.kernelObs(w.kernelFn)
	ko.SmemTxns += uint64(txns)
	if absorbed {
		ko.RFCacheHits++
	}
	w.smemTxns += uint64(txns)
	if w.smemTxns > ko.MaxWarpSmemTxns {
		ko.MaxWarpSmemTxns = w.smemTxns
	}
	if spill && !absorbed {
		w.smemSpillByte += 4
		if w.smemSpillByte > ko.MaxWarpSmemSpillBytes {
			ko.MaxWarpSmemSpillBytes = w.smemSpillByte
		}
	}
}

// BlockAdmit records a block admission, cross-checks the simulator's
// resident-warp count against the tally the admit/exit/retire stream
// implies, and tracks the per-kernel peak residency.
func (s *Sanitizer) BlockAdmit(sm, blockID, levelIdx, regsPerWarp, warps, resident int) {
	if len(s.admitted) == 0 {
		// A fresh launch: the SMs drained completely, so the admissions
		// until the first warp exit form the opening wave whose
		// residency is the launch's occupancy figure.
		s.waveOpen = true
	}
	if want := s.resident[sm] + warps; want != resident {
		s.report(KindOccupancyDivergence, s.lastKernelFn, -1,
			"SM %d admits block %d: simulator reports %d resident warps, admit/exit/retire stream implies %d",
			sm, blockID, resident, want)
	}
	s.resident[sm] = resident
	s.admitted[blockID] = admitRec{sm: sm, left: warps}
	if s.waveOpen && s.lastKernelFn >= 0 {
		if ko := s.kernelObs(s.lastKernelFn); resident > ko.ResidentWarps {
			ko.ResidentWarps = resident
		}
	}
}

// WarpExit removes a finished warp from the resident-warp tally (its
// registers are released immediately, ahead of the block retiring).
func (s *Sanitizer) WarpExit(gwid int) {
	s.waveOpen = false
	w := s.warps[gwid]
	if w == nil {
		return
	}
	rec, ok := s.admitted[w.blockID]
	if !ok {
		s.report(KindOccupancyDivergence, w.kernelFn, -1,
			"warp %d exits in block %d which was never admitted", gwid, w.blockID)
		return
	}
	if rec.left <= 0 {
		s.report(KindOccupancyDivergence, w.kernelFn, -1,
			"warp %d exits in block %d after every admitted warp already exited", gwid, w.blockID)
		return
	}
	rec.left--
	s.admitted[w.blockID] = rec
	s.resident[rec.sm]--
}

// BlockRetire validates that a retiring block's warps all exited and
// drops it from the admission table.
func (s *Sanitizer) BlockRetire(sm, blockID int) {
	rec, ok := s.admitted[blockID]
	if !ok {
		s.report(KindOccupancyDivergence, s.lastKernelFn, -1,
			"SM %d retires block %d that was never admitted", sm, blockID)
		return
	}
	if rec.sm != sm {
		s.report(KindOccupancyDivergence, s.lastKernelFn, -1,
			"block %d admitted on SM %d but retired on SM %d", blockID, rec.sm, sm)
	}
	if rec.left != 0 {
		s.report(KindOccupancyDivergence, s.lastKernelFn, -1,
			"block %d retires with %d unfinished warp(s)", blockID, rec.left)
		s.resident[rec.sm] -= rec.left
	}
	delete(s.admitted, blockID)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// headInts renders the front of a slot queue for a message.
func headInts(s []int) []int {
	if len(s) > 4 {
		return s[:4]
	}
	return s
}
