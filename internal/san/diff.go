package san

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"

	"carsgo/internal/abi"
	"carsgo/internal/config"
	"carsgo/internal/isa"
	"carsgo/internal/sim"
	"carsgo/internal/vet"
	"carsgo/internal/workloads"
)

// This file is the static/dynamic differential harness: it runs a
// program under the shadow sanitizer and checks that internal/vet's
// static bounds dominate everything the machine actually did. A clean
// program must produce zero sanitizer diagnostics, and for every
// function and kernel the static worst case must be at least the
// observed dynamic maximum — if the dynamic machine ever exceeds a
// static bound, one of the two models is wrong.

// ErrNoFit reports that a launch cannot be scheduled under the given
// configuration: its shared-memory demand (including the per-thread
// shared-spill frame) exceeds a single SM's capacity, so no block
// would ever be admitted.
var ErrNoFit = errors.New("launch exceeds shared-memory capacity")

// DiffResult is the outcome of one workload under one ABI mode.
type DiffResult struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	// Skipped marks mode/workload pairs that legitimately cannot run:
	// recursion under the shared-spill ABI, or a spill frame too large
	// for shared memory. Reason says which.
	Skipped bool         `json:"skipped,omitempty"`
	Reason  string       `json:"reason,omitempty"`
	Diags   []Diag       `json:"diags,omitempty"`
	Obs     Observations `json:"obs"`
	// Violations lists dominance failures: places the dynamic machine
	// exceeded a static bound. Empty means the invariant held.
	Violations []string `json:"violations,omitempty"`
}

// OK reports whether the run upheld the differential invariant.
func (r *DiffResult) OK() bool {
	return r.Skipped || (len(r.Diags) == 0 && len(r.Violations) == 0)
}

// ConfigFor builds the simulator configuration matching an ABI mode.
func ConfigFor(mode abi.Mode) sim.Config {
	switch mode {
	case abi.CARS:
		return config.WithCARS(config.V100())
	case abi.SharedSpill:
		return config.WithSharedSpill(config.V100())
	default:
		return config.V100()
	}
}

// RunProgram executes the given launches on a fresh GPU with a shadow
// sanitizer attached and returns the sanitizer plus the vet report it
// was checked against. setup runs after GPU construction and before
// the launches (device-memory initialisation); it may be nil.
func RunProgram(ctx context.Context, prog *isa.Program, cfg sim.Config,
	setup func(g *sim.GPU) ([]isa.Launch, error)) (*Sanitizer, *vet.ProgramReport, error) {
	rep := vet.Report(prog)
	for _, d := range rep.Diags {
		if d.Sev >= vet.SevError {
			return nil, rep, fmt.Errorf("san: program does not vet: %s", d)
		}
	}
	return runVetted(ctx, prog, cfg, rep, setup)
}

// RunProgramUnvetted is RunProgram without the vet gate: the program
// runs even when the static verifier reports errors. The negative
// differential harness needs this — its workloads are broken on
// purpose, and the point is to watch the sanitizer catch them.
func RunProgramUnvetted(ctx context.Context, prog *isa.Program, cfg sim.Config,
	setup func(g *sim.GPU) ([]isa.Launch, error)) (*Sanitizer, *vet.ProgramReport, error) {
	return runVetted(ctx, prog, cfg, vet.Report(prog), setup)
}

func runVetted(ctx context.Context, prog *isa.Program, cfg sim.Config, rep *vet.ProgramReport,
	setup func(g *sim.GPU) ([]isa.Launch, error)) (*Sanitizer, *vet.ProgramReport, error) {
	g, err := sim.New(cfg, prog)
	if err != nil {
		return nil, rep, err
	}
	s := New(prog)
	g.San = s
	launches, err := setup(g)
	if err != nil {
		return nil, rep, err
	}
	for _, l := range launches {
		need := l.SharedBytes + prog.SmemSpillPerThread*l.Dim.Block
		if !cfg.UnlimitedSmem && need > cfg.SharedMemBytes {
			return nil, rep, fmt.Errorf("san: launch %s: %w (needs %dB, SM has %dB)",
				l.Kernel, ErrNoFit, need, cfg.SharedMemBytes)
		}
		if _, err := g.RunContext(ctx, l); err != nil {
			return nil, rep, fmt.Errorf("san: launch %s: %w", l.Kernel, err)
		}
	}
	return s, rep, nil
}

// Check compares the sanitizer's dynamic observations against vet's
// static report and returns every dominance violation found.
func Check(rep *vet.ProgramReport, s *Sanitizer, cars bool) []string {
	var out []string
	obs := s.Observations()
	for _, fo := range obs.Funcs {
		fr := rep.Func(fo.Func)
		if fr == nil {
			out = append(out, fmt.Sprintf("%s: observed dynamically but absent from the static report", fo.Func))
			continue
		}
		if cars && fo.MaxStackDepth > fr.MaxStackDepth {
			out = append(out, fmt.Sprintf("%s: dynamic rename depth %d exceeds static MaxStackDepth %d",
				fo.Func, fo.MaxStackDepth, fr.MaxStackDepth))
		}
		if !cars && fr.SpillBytes >= 0 && fo.MaxSpillBytes > fr.SpillBytes {
			out = append(out, fmt.Sprintf("%s: dynamic spill traffic %dB exceeds static SpillBytes %dB",
				fo.Func, fo.MaxSpillBytes, fr.SpillBytes))
		}
		// Cost dominance, per activation: a finite static bound on the
		// function body must cover the largest count any single
		// activation produced. Symbolic/unbounded bounds assert nothing.
		if c := fr.Cost; c != nil {
			costDom(&out, fo.Func, "spill stores", c.SpillStores, uint64(fo.MaxSpillStores))
			costDom(&out, fo.Func, "spill fills", c.SpillFills, uint64(fo.MaxSpillFills))
			costDom(&out, fo.Func, "local traffic", c.LocalBytes, uint64(fo.MaxLocalBytes))
			costDom(&out, fo.Func, "shared traffic", c.SharedBytes, uint64(fo.MaxSharedBytes))
		}
	}
	for _, ko := range obs.Kernels {
		kr := rep.Kernel(ko.Kernel)
		if kr == nil {
			if cars {
				out = append(out, fmt.Sprintf("%s: kernel observed dynamically but absent from the static report", ko.Kernel))
			}
			continue
		}
		if kr.StackSlots >= 0 && ko.MaxRSP > kr.StackSlots {
			out = append(out, fmt.Sprintf("%s: dynamic MaxRSP %d exceeds static stack demand %d",
				ko.Kernel, ko.MaxRSP, kr.StackSlots))
		}
		if !kr.TrapReachable && ko.TrapSpillSlots > 0 {
			out = append(out, fmt.Sprintf("%s: vet proved the spill trap unreachable but it spilled %d slot(s)",
				ko.Kernel, ko.TrapSpillSlots))
		}
		if kr.BarrierSafe && ko.BarrierDivergences > 0 {
			out = append(out, fmt.Sprintf("%s: vet proved every barrier convergent but the sanitizer saw %d divergent arrival(s)",
				ko.Kernel, ko.BarrierDivergences))
		}
		if kr.RaceFree && ko.SharedRaces > 0 {
			out = append(out, fmt.Sprintf("%s: vet proved the kernel race-free but the sanitizer saw %d shared-memory race(s)",
				ko.Kernel, ko.SharedRaces))
		}
		// Interprocedural cost dominance: the kernel bound covers one
		// warp's whole activation, callees included.
		if kr.Perf != nil {
			c := kr.Perf.Cost
			costDom(&out, kr.Kernel, "warp spill stores", c.SpillStores, ko.MaxWarpSpillStores)
			costDom(&out, kr.Kernel, "warp spill fills", c.SpillFills, ko.MaxWarpSpillFills)
			costDom(&out, kr.Kernel, "warp local traffic", c.LocalBytes, ko.MaxWarpLocalBytes)
			costDom(&out, kr.Kernel, "warp shared traffic", c.SharedBytes, ko.MaxWarpSharedBytes)
			costDom(&out, kr.Kernel, "warp shared transactions", c.SharedTxns, ko.MaxWarpSmemTxns)
		}
	}
	sort.Strings(out)
	return out
}

// costDom appends a violation when a finite static cost bound is
// exceeded by the observed dynamic count.
func costDom(out *[]string, who, metric string, b vet.CostBound, dyn uint64) {
	if b.Finite() && dyn > uint64(b.Value) {
		*out = append(*out, fmt.Sprintf("%s: dynamic %s %d exceeds static bound %s",
			who, metric, dyn, b.Sym))
	}
}

// RunWorkload runs one built-in workload under one ABI mode with the
// sanitizer attached and checks the differential invariant.
func RunWorkload(ctx context.Context, w *workloads.Workload, mode abi.Mode) (*DiffResult, error) {
	res := &DiffResult{Workload: w.Name, Mode: mode.String()}
	prog, err := abi.Link(mode, w.Modules()...)
	if err != nil {
		if errors.Is(err, abi.ErrRecursive) {
			// Recursive workloads cannot compile under the shared-spill
			// ABI; the rejection is the expected behaviour.
			res.Skipped = true
			res.Reason = "recursive call graph"
			return res, nil
		}
		return nil, err
	}
	s, rep, err := RunProgram(ctx, prog, ConfigFor(mode), w.Setup)
	if err != nil {
		if errors.Is(err, ErrNoFit) {
			// The static shared-spill frame is too large for the target
			// SM. The program is rejected by capacity, not by the ABI.
			res.Skipped = true
			res.Reason = "shared-spill frame exceeds shared memory"
			return res, nil
		}
		return nil, err
	}
	res.Diags = s.Diags()
	res.Obs = s.Observations()
	res.Violations = Check(rep, s, prog.CARS)
	return res, nil
}

// DiffWorkloads runs the differential harness over the named workloads
// (all of them when names is empty) in every linkable ABI mode,
// reporting progress to out (which may be io.Discard). It returns the
// per-run results and whether every run upheld the invariant.
func DiffWorkloads(ctx context.Context, names []string, out io.Writer) ([]*DiffResult, bool, error) {
	var list []*workloads.Workload
	if len(names) == 0 {
		list = workloads.All()
	} else {
		for _, n := range names {
			w, err := workloads.ByName(n)
			if err != nil {
				return nil, false, err
			}
			list = append(list, w)
		}
	}
	var results []*DiffResult
	ok := true
	for _, w := range list {
		for _, mode := range abi.Modes {
			res, err := RunWorkload(ctx, w, mode)
			if err != nil {
				return results, false, fmt.Errorf("%s/%s: %w", w.Name, mode, err)
			}
			results = append(results, res)
			switch {
			case res.Skipped:
				fmt.Fprintf(out, "skip %-14s %-9s (%s)\n", w.Name, res.Mode, res.Reason)
			case res.OK():
				fmt.Fprintf(out, "ok   %-14s %-9s\n", w.Name, res.Mode)
			default:
				ok = false
				fmt.Fprintf(out, "FAIL %-14s %-9s\n", w.Name, res.Mode)
				for _, d := range res.Diags {
					fmt.Fprintf(out, "     %s [%s pc=%d]\n", d, d.Func, d.PC)
				}
				for _, v := range res.Violations {
					fmt.Fprintf(out, "     dominance: %s\n", v)
				}
			}
		}
	}
	return results, ok, nil
}

// DiffNegatives runs the deliberately-broken workloads
// (workloads.Negatives) in every linkable ABI mode and checks both
// directions of the differential: each expected defect must be flagged
// by the static verifier AND observed by the sanitizer, while the
// clean counterparts must pass both sides. It returns per-run results
// and whether every expectation held.
func DiffNegatives(ctx context.Context, out io.Writer) ([]*DiffResult, bool, error) {
	var results []*DiffResult
	ok := true
	for _, w := range workloads.Negatives() {
		for _, mode := range abi.Modes {
			res := &DiffResult{Workload: w.Name, Mode: mode.String()}
			prog, err := abi.Link(mode, w.Modules()...)
			if err != nil {
				return results, false, fmt.Errorf("%s/%s: %w", w.Name, mode, err)
			}
			s, rep, err := RunProgramUnvetted(ctx, prog, ConfigFor(mode), w.Setup)
			if err != nil {
				return results, false, fmt.Errorf("%s/%s: %w", w.Name, mode, err)
			}
			res.Diags = s.Diags()
			res.Obs = s.Observations()

			staticUnsafeBarrier, staticRacy := false, false
			for _, kr := range rep.Kernels {
				if !kr.BarrierSafe {
					staticUnsafeBarrier = true
				}
				if !kr.RaceFree {
					staticRacy = true
				}
			}
			var dynBarrier, dynRace uint64
			for _, ko := range res.Obs.Kernels {
				dynBarrier += ko.BarrierDivergences
				dynRace += ko.SharedRaces
			}
			expect := func(cond bool, format string, args ...any) {
				if !cond {
					res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
				}
			}
			if w.Expect.SharedRace {
				expect(staticRacy, "expected the static verifier to report a shared-memory race")
				expect(dynRace > 0, "expected the sanitizer to observe a shared-memory race")
			} else {
				expect(!staticRacy, "clean workload reported statically racy")
				expect(dynRace == 0, "clean workload raced dynamically (%d event(s))", dynRace)
			}
			if w.Expect.BarrierDivergence {
				expect(staticUnsafeBarrier, "expected the static verifier to report barrier divergence")
				expect(dynBarrier > 0, "expected the sanitizer to observe a divergent barrier arrival")
			} else {
				expect(!staticUnsafeBarrier, "clean workload reported statically barrier-unsafe")
				expect(dynBarrier == 0, "clean workload diverged at a barrier dynamically (%d event(s))", dynBarrier)
			}
			// Expected sanitizer diagnostics are not failures here; the
			// clean counterparts must still be diagnostic-free.
			clean := !w.Expect.SharedRace && !w.Expect.BarrierDivergence
			if clean {
				res.Violations = append(res.Violations, Check(rep, s, prog.CARS)...)
				if len(res.Diags) > 0 {
					ok = false
				}
			} else {
				res.Diags = nil // reported via the expectations above
			}
			if len(res.Violations) > 0 {
				ok = false
			}
			results = append(results, res)
			status := "ok  "
			if len(res.Violations) > 0 || (clean && len(res.Diags) > 0) {
				status = "FAIL"
			}
			fmt.Fprintf(out, "%s %-18s %-9s\n", status, w.Name, res.Mode)
			for _, v := range res.Violations {
				fmt.Fprintf(out, "     expectation: %s\n", v)
			}
		}
	}
	return results, ok, nil
}

// SmokeLaunch builds a minimal launch for a program's first kernel
// (alphabetically): one block of 64 threads with zeroed parameters.
// It gives file-based inputs to carsvet -diff and the sanitizer tests
// something to execute without a workload-specific setup.
func SmokeLaunch(prog *isa.Program) (isa.Launch, error) {
	var kernels []string
	for name := range prog.Kernels {
		kernels = append(kernels, name)
	}
	if len(kernels) == 0 {
		return isa.Launch{}, fmt.Errorf("san: program has no kernels")
	}
	sort.Strings(kernels)
	return isa.Launch{
		Kernel: kernels[0],
		Dim:    isa.Dim3{Grid: 1, Block: 64},
		Params: make([]uint32, 8),
	}, nil
}
