package san

import (
	"context"
	"errors"
	"fmt"
	"io"

	"carsgo/internal/abi"
	"carsgo/internal/kir"
	"carsgo/internal/opt"
	"carsgo/internal/sim"
	"carsgo/internal/vet"
	"carsgo/internal/workloads"
)

// This file is the optimize→simulate differential: the soundness
// oracle for internal/opt's certificate-carrying rewrites. For every
// workload × ABI mode it links and runs both the original and the
// optimized modules and requires
//
//   - bit-identical output regions (the rewrites must be semantically
//     invisible — cycles may differ, results may not);
//   - a clean sanitizer and an intact static/dynamic dominance
//     invariant on the optimized program (the optimized code must
//     still satisfy its own recomputed vet report);
//   - a non-degrading static report: every finite bound vet proved
//     about the original (stack depth, spill bytes, cost polynomials)
//     must still be finite and no larger for the optimized program.
//
// A failure names the certificates applied, so a lying static fact is
// directly attributable.

// OptDiffResult is the outcome of one workload under one ABI mode.
type OptDiffResult struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	Skipped  bool   `json:"skipped,omitempty"`
	Reason   string `json:"reason,omitempty"`
	// Certs are the rewrites the optimizer applied (empty = the
	// differential degenerates to running the same program twice).
	Certs []opt.Certificate `json:"certs,omitempty"`
	// Failures lists every broken oracle clause. Empty = invariant held.
	Failures []string `json:"failures,omitempty"`
	// Simulated effort on both sides, for reporting (not an oracle:
	// occupancy changes legitimately move cycle counts in either
	// direction; instruction counts are checked separately).
	CyclesOrig int64  `json:"cyclesOrig"`
	CyclesOpt  int64  `json:"cyclesOpt"`
	InstrOrig  uint64 `json:"instrOrig"`
	InstrOpt   uint64 `json:"instrOpt"`
}

// OK reports whether the run upheld the oracle.
func (r *OptDiffResult) OK() bool {
	return r.Skipped || len(r.Failures) == 0
}

// optRun holds one side's execution artifacts.
type optRun struct {
	rep    *vet.ProgramReport
	out    []uint32
	cycles int64
	instr  uint64
	san    *Sanitizer
	cars   bool
}

// runSide links, vets, and runs one module set, collecting the output
// region and the sanitizer observations.
func runSide(ctx context.Context, w *workloads.Workload, mode abi.Mode, mods []*kir.Module) (*optRun, error) {
	prog, err := abi.Link(mode, mods...)
	if err != nil {
		return nil, err
	}
	cfg := ConfigFor(mode)
	rep := vet.Report(prog)
	for _, d := range rep.Diags {
		if d.Sev >= vet.SevError {
			return nil, fmt.Errorf("program does not vet: %s", d)
		}
	}
	g, err := sim.New(cfg, prog)
	if err != nil {
		return nil, err
	}
	s := New(prog)
	g.San = s
	launches, err := w.Setup(g)
	if err != nil {
		return nil, err
	}
	r := &optRun{rep: rep, san: s, cars: prog.CARS}
	for _, l := range launches {
		need := l.SharedBytes + prog.SmemSpillPerThread*l.Dim.Block
		if !cfg.UnlimitedSmem && need > cfg.SharedMemBytes {
			return nil, fmt.Errorf("launch %s: %w (needs %dB, SM has %dB)",
				l.Kernel, ErrNoFit, need, cfg.SharedMemBytes)
		}
		st, err := g.RunContext(ctx, l)
		if err != nil {
			return nil, fmt.Errorf("launch %s: %w", l.Kernel, err)
		}
		r.cycles += st.Cycles
		r.instr += st.TotalInstructions()
	}
	r.out = w.Output(g)
	return r, nil
}

// OptDiffWorkload runs the optimize→simulate differential for one
// workload under one ABI mode.
func OptDiffWorkload(ctx context.Context, w *workloads.Workload, mode abi.Mode) (*OptDiffResult, error) {
	res := &OptDiffResult{Workload: w.Name, Mode: mode.String()}
	mods := w.Modules()
	optMods, certs, err := opt.OptimizeAll(mods...)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	res.Certs = certs

	orig, err := runSide(ctx, w, mode, mods)
	if err != nil {
		if errors.Is(err, abi.ErrRecursive) {
			res.Skipped, res.Reason = true, "recursive call graph"
			return res, nil
		}
		if errors.Is(err, ErrNoFit) {
			res.Skipped, res.Reason = true, "shared-spill frame exceeds shared memory"
			return res, nil
		}
		return nil, fmt.Errorf("%s/%s original: %w", w.Name, mode, err)
	}
	optd, err := runSide(ctx, w, mode, optMods)
	if err != nil {
		// The original ran; the optimized program failing to link or
		// run at all is itself an oracle failure.
		res.Failures = append(res.Failures, fmt.Sprintf("optimized program failed: %v", err))
		return res, nil
	}
	res.CyclesOrig, res.CyclesOpt = orig.cycles, optd.cycles
	res.InstrOrig, res.InstrOpt = orig.instr, optd.instr

	// Clause 1: bit-identical outputs.
	if len(orig.out) != len(optd.out) {
		res.Failures = append(res.Failures,
			fmt.Sprintf("output region size differs: %d vs %d words", len(orig.out), len(optd.out)))
	} else {
		for i := range orig.out {
			if orig.out[i] != optd.out[i] {
				res.Failures = append(res.Failures,
					fmt.Sprintf("output word %d differs: %#x (original) vs %#x (optimized)",
						i, orig.out[i], optd.out[i]))
				break
			}
		}
	}

	// Clause 2: the optimized program is clean under its own recomputed
	// report — sanitizer silent, dominance intact.
	for _, d := range optd.san.Diags() {
		res.Failures = append(res.Failures, fmt.Sprintf("optimized sanitizer: %s", d))
	}
	for _, v := range Check(optd.rep, optd.san, optd.cars) {
		res.Failures = append(res.Failures, fmt.Sprintf("optimized dominance: %s", v))
	}

	// Clause 3: the static report must not degrade.
	res.Failures = append(res.Failures, vetNonDegrading(orig.rep, optd.rep)...)

	return res, nil
}

// vetNonDegrading compares the optimized program's static report
// against the original's: every finite bound must stay finite and
// monotonically ≤, and every proven synchronization verdict must stay
// proven.
func vetNonDegrading(orig, optd *vet.ProgramReport) []string {
	var out []string
	for i := range optd.Funcs {
		nf := &optd.Funcs[i]
		of := orig.Func(nf.Func)
		if of == nil {
			out = append(out, fmt.Sprintf("vet degraded: function %s appeared from nowhere", nf.Func))
			continue
		}
		if nf.MaxStackDepth > of.MaxStackDepth {
			out = append(out, fmt.Sprintf("vet degraded: %s MaxStackDepth %d > %d", nf.Func, nf.MaxStackDepth, of.MaxStackDepth))
		}
		if of.SpillBytes >= 0 && (nf.SpillBytes < 0 || nf.SpillBytes > of.SpillBytes) {
			out = append(out, fmt.Sprintf("vet degraded: %s SpillBytes %d > %d", nf.Func, nf.SpillBytes, of.SpillBytes))
		}
		if of.Cost != nil && nf.Cost != nil {
			boundMono(&out, nf.Func+" spill stores", of.Cost.SpillStores, nf.Cost.SpillStores)
			boundMono(&out, nf.Func+" spill fills", of.Cost.SpillFills, nf.Cost.SpillFills)
			boundMono(&out, nf.Func+" local bytes", of.Cost.LocalBytes, nf.Cost.LocalBytes)
			boundMono(&out, nf.Func+" shared bytes", of.Cost.SharedBytes, nf.Cost.SharedBytes)
		}
	}
	for i := range optd.Kernels {
		nk := &optd.Kernels[i]
		ok := orig.Kernel(nk.Kernel)
		if ok == nil {
			continue
		}
		if ok.StackSlots >= 0 && (nk.StackSlots < 0 || nk.StackSlots > ok.StackSlots) {
			out = append(out, fmt.Sprintf("vet degraded: %s StackSlots %d > %d", nk.Kernel, nk.StackSlots, ok.StackSlots))
		}
		if !ok.TrapReachable && nk.TrapReachable {
			out = append(out, fmt.Sprintf("vet degraded: %s spill trap became reachable", nk.Kernel))
		}
		if ok.BarrierSafe && !nk.BarrierSafe {
			out = append(out, fmt.Sprintf("vet degraded: %s lost BarrierSafe", nk.Kernel))
		}
		if ok.RaceFree && !nk.RaceFree {
			out = append(out, fmt.Sprintf("vet degraded: %s lost RaceFree", nk.Kernel))
		}
		if ok.Perf != nil && nk.Perf != nil {
			boundMono(&out, nk.Kernel+" warp spill stores", ok.Perf.Cost.SpillStores, nk.Perf.Cost.SpillStores)
			boundMono(&out, nk.Kernel+" warp spill fills", ok.Perf.Cost.SpillFills, nk.Perf.Cost.SpillFills)
			boundMono(&out, nk.Kernel+" warp local bytes", ok.Perf.Cost.LocalBytes, nk.Perf.Cost.LocalBytes)
			boundMono(&out, nk.Kernel+" warp shared bytes", ok.Perf.Cost.SharedBytes, nk.Perf.Cost.SharedBytes)
		}
	}
	return out
}

func boundMono(out *[]string, what string, orig, optd vet.CostBound) {
	if orig.Finite() && (!optd.Finite() || optd.Value > orig.Value) {
		*out = append(*out, fmt.Sprintf("vet degraded: %s bound %s > %s", what, optd.Sym, orig.Sym))
	}
}

// OptDiffWorkloads runs the optimize→simulate differential over the
// named workloads (all of them when names is empty) in every ABI mode.
func OptDiffWorkloads(ctx context.Context, names []string, out io.Writer) ([]*OptDiffResult, bool, error) {
	var list []*workloads.Workload
	if len(names) == 0 {
		list = workloads.All()
	} else {
		for _, n := range names {
			w, err := workloads.ByName(n)
			if err != nil {
				return nil, false, err
			}
			list = append(list, w)
		}
	}
	var results []*OptDiffResult
	ok := true
	for _, w := range list {
		for _, mode := range abi.Modes {
			res, err := OptDiffWorkload(ctx, w, mode)
			if err != nil {
				return results, false, err
			}
			results = append(results, res)
			switch {
			case res.Skipped:
				fmt.Fprintf(out, "skip %-14s %-9s (%s)\n", w.Name, res.Mode, res.Reason)
			case res.OK():
				fmt.Fprintf(out, "ok   %-14s %-9s %3d cert(s)  cycles %d→%d\n",
					w.Name, res.Mode, len(res.Certs), res.CyclesOrig, res.CyclesOpt)
			default:
				ok = false
				fmt.Fprintf(out, "FAIL %-14s %-9s\n", w.Name, res.Mode)
				for _, f := range res.Failures {
					fmt.Fprintf(out, "     %s\n", f)
				}
				for _, c := range res.Certs {
					fmt.Fprintf(out, "     applied: %s\n", c)
				}
			}
		}
	}
	return results, ok, nil
}
