package san

import (
	"context"
	"testing"

	"carsgo/internal/abi"
	"carsgo/internal/workloads"
)

// TestPerfDiffShallowCall exercises the full differential on the
// cheapest registry case: dominance, per-level occupancy exactness,
// and the advisor regret bound must all hold in every ABI mode.
func TestPerfDiffShallowCall(t *testing.T) {
	w, err := workloads.ByName("PERF_ShallowCall")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range abi.Modes {
		res, err := PerfDiffWorkload(context.Background(), w, mode, DefaultRegret)
		if err != nil {
			t.Fatalf("[%s] %v", mode, err)
		}
		if !res.OK() {
			t.Fatalf("[%s] violations: %v", mode, res.Violations)
		}
		if res.Skipped {
			t.Fatalf("[%s] unexpectedly skipped: %s", mode, res.Reason)
		}
		for _, lr := range res.Levels {
			if lr.SimWarps != lr.StaticWarps || lr.SanWarps != lr.StaticWarps {
				t.Errorf("[%s] %s: static=%d sim=%d san=%d, want exact",
					mode, lr.Level, lr.StaticWarps, lr.SimWarps, lr.SanWarps)
			}
		}
		if mode == abi.CARS {
			if res.Advised != "High" {
				t.Errorf("[cars] advised %s, want High (the 8-slot demand is free)", res.Advised)
			}
			if res.Regret != 0 {
				t.Errorf("[cars] regret %.2f, want 0", res.Regret)
			}
		}
	}
}

// TestPerfDiffDeepCallAvoidsHigh is the advisor's negative control:
// the rarely-entered 16-deep chain makes High collapse occupancy, and
// the differential's AvoidHigh expectation must hold.
func TestPerfDiffDeepCallAvoidsHigh(t *testing.T) {
	if testing.Short() {
		t.Skip("level ladder of a full-size workload")
	}
	w, err := workloads.ByName("PERF_DeepCall")
	if err != nil {
		t.Fatal(err)
	}
	if !w.PerfExpect.AvoidHigh {
		t.Fatal("PERF_DeepCall must carry the AvoidHigh expectation")
	}
	res, err := PerfDiffWorkload(context.Background(), w, abi.CARS, DefaultRegret)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Advised == "High" {
		t.Fatalf("advisor recommended High despite the occupancy cliff")
	}
}

// TestPerfDiffMultiKernelReducesScope: a workload that launches two
// distinct kernels cannot run the single-kernel level study; it must
// keep the dominance check and reduce scope, not fail.
func TestPerfDiffMultiKernelReducesScope(t *testing.T) {
	if testing.Short() {
		t.Skip("full PTA pipeline run")
	}
	w, err := workloads.ByName("PTA")
	if err != nil {
		t.Fatal(err)
	}
	res, err := PerfDiffWorkload(context.Background(), w, abi.Baseline, DefaultRegret)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Skipped {
		t.Fatalf("unexpectedly skipped: %s", res.Reason)
	}
	if res.Reason == "" || len(res.Levels) != 0 {
		t.Fatalf("want a reduced-scope reason and no level rows, got reason=%q levels=%d",
			res.Reason, len(res.Levels))
	}
}
