package simt

import (
	"math/rand"
	"testing"
)

func TestSequentialAdvance(t *testing.T) {
	var s Stack
	s.Reset(0, FullMask)
	if s.Depth() != 1 || s.Top().PC != 0 {
		t.Fatal("bad reset state")
	}
	s.Advance()
	if s.Top().PC != 1 || s.Top().Mask != FullMask {
		t.Fatalf("advance: pc=%d mask=%x", s.Top().PC, s.Top().Mask)
	}
}

func TestUniformBranch(t *testing.T) {
	var s Stack
	s.Reset(0, FullMask)
	s.Branch(0, FullMask, 10, 12) // all taken
	if s.Depth() != 1 || s.Top().PC != 10 {
		t.Fatalf("taken: depth=%d pc=%d", s.Depth(), s.Top().PC)
	}
	s.Branch(10, 0, 3, 12) // none taken
	if s.Depth() != 1 || s.Top().PC != 11 {
		t.Fatalf("not-taken: depth=%d pc=%d", s.Depth(), s.Top().PC)
	}
}

func TestDivergentBranchReconverges(t *testing.T) {
	var s Stack
	s.Reset(0, FullMask)
	taken := uint32(0x0000FFFF)
	s.Branch(5, taken, 20, 30)
	if s.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", s.Depth())
	}
	// Taken path executes first.
	if s.Top().PC != 20 || s.Top().Mask != taken {
		t.Fatalf("taken path: pc=%d mask=%x", s.Top().PC, s.Top().Mask)
	}
	// Walk the taken path until it reconverges (pops).
	for s.Top().Mask == taken {
		s.Advance()
	}
	// Should have popped to the fall-through path at pc 6.
	if s.Top().PC != 6 || s.Top().Mask != ^taken {
		t.Fatalf("fall-through: pc=%d mask=%x", s.Top().PC, s.Top().Mask)
	}
	for s.Top().Mask == ^taken {
		s.Advance()
	}
	if s.Depth() != 1 || s.Top().Mask != FullMask || s.Top().PC != 30 {
		t.Fatalf("reconverged: depth=%d mask=%x pc=%d", s.Depth(), s.Top().Mask, s.Top().PC)
	}
}

func TestCallReturnUniform(t *testing.T) {
	var s Stack
	s.Reset(0, FullMask)
	s.Advance()
	s.Call(3, 2) // call func 3, resume at pc 2
	if s.Top().Func != 3 || s.Top().PC != 0 || s.Top().Kind != KindCall {
		t.Fatalf("call entry wrong: %+v", *s.Top())
	}
	if s.CallDepth() != 1 {
		t.Fatalf("call depth = %d", s.CallDepth())
	}
	s.Advance()
	if done := s.Ret(); !done {
		t.Fatal("uniform return did not release the frame")
	}
	if s.Top().Func != 0 || s.Top().PC != 2 {
		t.Fatalf("resume: func=%d pc=%d", s.Top().Func, s.Top().PC)
	}
}

// TestDivergentEarlyReturn models §III-C case 2: a subset of lanes
// returns early; the frame must persist until every lane returned.
func TestDivergentEarlyReturn(t *testing.T) {
	var s Stack
	s.Reset(0, FullMask)
	s.Call(1, 5)
	early := uint32(0x000000FF)
	// Diverge inside the function at pc 0: early lanes jump to a Ret
	// at pc 10; the rest fall through.
	s.Branch(0, early, 10, 12)
	if s.Top().Mask != early || s.Top().PC != 10 {
		t.Fatalf("early path: %+v", *s.Top())
	}
	if done := s.Ret(); done {
		t.Fatal("early return released the frame with lanes inside")
	}
	// The remaining lanes continue from pc 1.
	if s.Top().Mask != ^early || s.Top().PC != 1 {
		t.Fatalf("rest path: pc=%d mask=%x", s.Top().PC, s.Top().Mask)
	}
	if done := s.Ret(); !done {
		t.Fatal("final return did not release the frame")
	}
	if s.Top().Func != 0 || s.Top().PC != 5 || s.Top().Mask != FullMask {
		t.Fatalf("resume state: %+v", *s.Top())
	}
}

func TestNestedCalls(t *testing.T) {
	var s Stack
	s.Reset(0, FullMask)
	s.Call(1, 1)
	s.Call(2, 7)
	if s.CallDepth() != 2 {
		t.Fatalf("depth = %d", s.CallDepth())
	}
	if !s.Ret() {
		t.Fatal("inner ret")
	}
	if s.Top().Func != 1 || s.Top().PC != 7 {
		t.Fatalf("after inner ret: %+v", *s.Top())
	}
	if !s.Ret() {
		t.Fatal("outer ret")
	}
	if s.Top().Func != 0 || s.Top().PC != 1 {
		t.Fatalf("after outer ret: %+v", *s.Top())
	}
}

func TestPartialMaskCall(t *testing.T) {
	var s Stack
	s.Reset(0, FullMask)
	sub := uint32(0xF0F0F0F0)
	s.Branch(0, sub, 5, 9)
	// The taken path calls a function under the partial mask.
	s.Call(2, 6)
	if s.Top().Mask != sub || s.Top().Pending != sub {
		t.Fatalf("partial call mask %x pending %x", s.Top().Mask, s.Top().Pending)
	}
	if !s.Ret() {
		t.Fatal("partial-mask uniform return should release")
	}
	if s.Top().Mask != sub || s.Top().PC != 6 {
		t.Fatalf("resume: %+v", *s.Top())
	}
}

func TestExitAllLanes(t *testing.T) {
	var s Stack
	s.Reset(0, FullMask)
	s.Exit()
	if !s.Empty() {
		t.Fatal("stack should be empty after full exit")
	}
}

func TestExitPartialThenRest(t *testing.T) {
	var s Stack
	s.Reset(0, FullMask)
	half := uint32(0x0000FFFF)
	s.Branch(0, half, 10, 20)
	s.Exit() // the taken half exits
	if s.Empty() {
		t.Fatal("half the lanes still live")
	}
	if s.Top().Mask != ^half {
		t.Fatalf("remaining mask %x", s.Top().Mask)
	}
	for s.Top().PC != 20 {
		s.Advance()
	}
	if s.Top().Mask != ^half {
		t.Fatalf("after reconv, mask %x", s.Top().Mask)
	}
	s.Exit()
	if !s.Empty() {
		t.Fatal("stack should be empty")
	}
}

// TestRandomisedCallTrees drives random call/branch/ret sequences and
// checks structural invariants: masks nest, pending lanes are subsets,
// and every opened frame eventually closes.
func TestRandomisedCallTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var s Stack
		s.Reset(0, FullMask)
		opened, closed := 0, 0
		for step := 0; step < 300 && !s.Empty(); step++ {
			top := s.Top()
			checkInvariants(t, &s)
			switch r := rng.Intn(10); {
			case r < 3 && s.CallDepth() < 6:
				s.Call(top.Func+1, top.PC+1)
				opened++
			case r < 5 && s.CallDepth() > 0:
				if s.Ret() {
					closed++
				}
			case r < 8:
				sub := rng.Uint32() & top.Mask
				s.Branch(top.PC, sub, top.PC+1+rng.Intn(3), top.PC+5)
			default:
				s.Advance()
			}
		}
		// Drain: return from everything.
		for !s.Empty() && s.CallDepth() > 0 {
			if s.Ret() {
				closed++
			}
			checkInvariants(t, &s)
		}
		if closed > opened {
			t.Fatalf("trial %d: closed %d > opened %d", trial, closed, opened)
		}
	}
}

func checkInvariants(t *testing.T, s *Stack) {
	t.Helper()
	for i := range s.entries {
		e := &s.entries[i]
		if e.Kind == KindCall && e.Mask&^e.Pending != 0 {
			t.Fatalf("entry %d: active lanes %x not pending %x", i, e.Mask, e.Pending)
		}
	}
}
