// Package simt implements the per-warp SIMT reconvergence stack,
// including the function-call entries CARS augments with a call bit
// (§IV-B2) so a register frame is only released when every lane has
// returned from the function.
//
// The stack follows the classic post-dominator scheme: the top entry
// supplies the warp's active mask and next PC. A divergent branch
// mutates the top entry into its reconvergence continuation and pushes
// one entry per outcome; when a path reaches its reconvergence PC it
// pops and its lanes merge back into the continuation.
package simt

// FullMask has all 32 lanes active.
const FullMask = ^uint32(0)

// Kind distinguishes stack entries.
type Kind uint8

const (
	// KindNormal is a divergence-path or base entry.
	KindNormal Kind = iota
	// KindCall is a function-call entry (the paper's extra SIMT bit).
	KindCall
)

// NoReconv marks entries without a reconvergence PC (base and call).
const NoReconv = -1

// Entry is one SIMT stack entry.
type Entry struct {
	Func     int    // function index the PC belongs to
	PC       int    // next instruction to execute for this path
	Mask     uint32 // active lanes on this path
	ReconvPC int    // pop when PC reaches this (KindNormal only)
	Kind     Kind

	// Pending tracks, for KindCall, the lanes that have not yet
	// returned; the frame deallocates only when Pending reaches zero.
	Pending uint32
}

// Stack is a per-warp SIMT stack.
type Stack struct {
	entries []Entry
}

// Reset initialises the stack for kernel entry.
func (s *Stack) Reset(kernelFunc int, mask uint32) {
	s.entries = s.entries[:0]
	s.entries = append(s.entries, Entry{
		Func: kernelFunc, PC: 0, Mask: mask, ReconvPC: NoReconv, Kind: KindNormal,
	})
}

// Depth returns the stack depth.
func (s *Stack) Depth() int { return len(s.entries) }

// Empty reports whether all lanes have exited.
func (s *Stack) Empty() bool { return len(s.entries) == 0 }

// Top returns the active entry.
func (s *Stack) Top() *Entry { return &s.entries[len(s.entries)-1] }

// CallDepth returns the number of call entries on the stack.
func (s *Stack) CallDepth() int {
	n := 0
	for i := range s.entries {
		if s.entries[i].Kind == KindCall {
			n++
		}
	}
	return n
}

// Advance moves the top entry past a sequential instruction and pops
// any path that thereby reaches its reconvergence point.
func (s *Stack) Advance() {
	s.Top().PC++
	s.popReconverged()
}

func (s *Stack) popReconverged() {
	for len(s.entries) > 0 {
		t := s.Top()
		if t.Kind == KindNormal && t.ReconvPC != NoReconv && (t.PC == t.ReconvPC || t.Mask == 0) {
			s.entries = s.entries[:len(s.entries)-1]
			continue
		}
		return
	}
}

// Branch applies a branch executed at pc on the top entry. takenMask
// must be a subset of the active mask; reconvPC is the immediate
// post-dominator the compiler recorded (the instruction's Target2).
func (s *Stack) Branch(pc int, takenMask uint32, target, reconvPC int) {
	t := s.Top()
	notTaken := t.Mask &^ takenMask
	switch {
	case takenMask == 0:
		t.PC = pc + 1
	case notTaken == 0:
		t.PC = target
	default:
		fn := t.Func
		t.PC = reconvPC
		s.entries = append(s.entries,
			Entry{Func: fn, PC: pc + 1, Mask: notTaken, ReconvPC: reconvPC, Kind: KindNormal},
			Entry{Func: fn, PC: target, Mask: takenMask, ReconvPC: reconvPC, Kind: KindNormal},
		)
	}
	s.popReconverged()
}

// Call transfers the active lanes into calleeFunc. retPC is where the
// caller resumes; the caller's entry is parked there so returning is a
// pure pop.
func (s *Stack) Call(calleeFunc, retPC int) {
	t := s.Top()
	mask := t.Mask
	t.PC = retPC
	s.entries = append(s.entries, Entry{
		Func: calleeFunc, PC: 0, Mask: mask, ReconvPC: NoReconv,
		Kind: KindCall, Pending: mask,
	})
}

// Ret retires the active lanes from the innermost call. Lanes that
// return while siblings are still inside the function are parked at the
// call (§III-C case 2): they leave every path at or above the call
// entry but the entry — and the register frame — survives until
// Pending drains. Ret reports whether the frame was released.
func (s *Stack) Ret() (frameReleased bool) {
	mask := s.Top().Mask
	ci := -1
	for i := len(s.entries) - 1; i >= 0; i-- {
		if s.entries[i].Kind == KindCall {
			ci = i
			break
		}
	}
	if ci < 0 {
		panic("simt: Ret with no call entry on the stack")
	}
	call := &s.entries[ci]
	call.Pending &^= mask
	for i := ci; i < len(s.entries); i++ {
		s.entries[i].Mask &^= mask
	}
	// Unwind finished paths above the call entry.
	for len(s.entries)-1 > ci {
		t := s.Top()
		if t.Mask == 0 || (t.Kind == KindNormal && t.PC == t.ReconvPC) {
			s.entries = s.entries[:len(s.entries)-1]
			continue
		}
		break
	}
	if len(s.entries)-1 == ci && call.Pending == 0 {
		s.entries = s.entries[:ci]
		s.popReconverged()
		return true
	}
	return false
}

// Exit retires the active lanes from the kernel entirely. It returns
// the number of call frames released because their last lanes exited.
func (s *Stack) Exit() (framesReleased int) {
	mask := s.Top().Mask
	for i := range s.entries {
		s.entries[i].Mask &^= mask
		s.entries[i].Pending &^= mask
	}
	for len(s.entries) > 0 {
		t := s.Top()
		if t.Mask != 0 {
			break
		}
		if t.Kind == KindCall {
			framesReleased++
		}
		s.entries = s.entries[:len(s.entries)-1]
	}
	s.popReconverged()
	return framesReleased
}
