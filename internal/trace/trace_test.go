package trace_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"carsgo/internal/abi"
	"carsgo/internal/config"
	"carsgo/internal/isa"
	"carsgo/internal/sim"
	"carsgo/internal/trace"
	"carsgo/internal/workloads"
)

func TestRoundTripRandomEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	events := make([]trace.Event, 5000)
	fn, pc, gwid := uint32(0), uint32(0), uint32(0)
	for i := range events {
		// Mimic real traces: long sequential runs with occasional jumps.
		switch rng.Intn(10) {
		case 0:
			fn = uint32(rng.Intn(8))
			pc = uint32(rng.Intn(100))
		case 1:
			gwid = uint32(rng.Intn(256))
		case 2:
			pc = uint32(rng.Intn(1000))
		default:
			pc++
		}
		events[i] = trace.Event{
			SM:   uint8(rng.Intn(8)),
			GWID: gwid,
			Func: fn,
			PC:   pc,
			Op:   isa.Op(rng.Intn(int(isa.OpPop) + 1)),
			Mask: rng.Uint32(),
		}
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, got) {
		for i := range events {
			if events[i] != got[i] {
				t.Fatalf("event %d: %+v vs %+v", i, got[i], events[i])
			}
		}
	}
}

func TestCompression(t *testing.T) {
	// Sequential single-warp execution compresses far below the naive
	// 17 bytes/event.
	events := make([]trace.Event, 10000)
	for i := range events {
		events[i] = trace.Event{GWID: 3, Func: 1, PC: uint32(i), Op: isa.OpIAdd, Mask: ^uint32(0)}
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	if perEvent := float64(buf.Len()) / float64(len(events)); perEvent > 3 {
		t.Errorf("sequential trace costs %.1f bytes/event", perEvent)
	}
}

func TestCorruptTraceRejected(t *testing.T) {
	if _, err := trace.Read(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	trace.Write(&buf, []trace.Event{{Op: isa.OpNop}})
	raw := buf.Bytes()
	if _, err := trace.Read(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestRecorderCap(t *testing.T) {
	r := &trace.Recorder{Cap: 10}
	for i := 0; i < 25; i++ {
		r.OnIssue(0, 0, 0, i, isa.OpNop, 1)
	}
	if len(r.Events) != 10 || r.Dropped != 15 {
		t.Fatalf("cap: %d events, %d dropped", len(r.Events), r.Dropped)
	}
}

// TestTraceMatchesSimulatorStats is the cross-check: characteristics
// recomputed from the captured trace must equal the simulator's own
// counters — instruction counts exactly, CPKI to rounding.
func TestTraceMatchesSimulatorStats(t *testing.T) {
	w, err := workloads.ByName("SSSP")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := abi.Link(abi.Baseline, w.Modules()...)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := sim.New(config.V100(), prog)
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	gpu.Trace = rec
	launches, err := w.Setup(gpu)
	if err != nil {
		t.Fatal(err)
	}
	var cycles int64
	var warpInstr, calls uint64
	for _, l := range launches {
		st, err := gpu.Run(l)
		if err != nil {
			t.Fatal(err)
		}
		cycles += st.Cycles
		warpInstr += st.TotalInstructions()
		calls += st.Calls
	}
	sum := trace.Summarize(rec.Events, prog)
	// Trap-injected spill ops are counted by the simulator's stats but
	// are not program instructions, so they never reach the trace; the
	// baseline run has none, making the counts exact.
	if sum.WarpInstructions != warpInstr {
		t.Errorf("trace instrs %d, sim %d", sum.WarpInstructions, warpInstr)
	}
	if sum.Calls != calls {
		t.Errorf("trace calls %d, sim %d", sum.Calls, calls)
	}
	if sum.MaxCallDepth != 3 {
		t.Errorf("trace call depth = %d, want 3", sum.MaxCallDepth)
	}
	if sum.SpillFillInstr == 0 {
		t.Error("trace found no spill instructions in a spilling workload")
	}
	if got := sum.ByOp[isa.OpCall] + sum.ByOp[isa.OpCallI]; got != calls {
		t.Errorf("per-op call count %d vs %d", got, calls)
	}
	_ = cycles
}

func TestSummaryEmpty(t *testing.T) {
	s := trace.Summarize(nil, nil)
	if s.CPKI != 0 || s.WarpInstructions != 0 {
		t.Fatal("empty trace summary not zero")
	}
}

func TestSummarizeByFuncAndOps(t *testing.T) {
	events := []trace.Event{
		{Func: 0, PC: 0, Op: isa.OpCall, Mask: 0xF},
		{Func: 1, PC: 0, Op: isa.OpIAdd, Mask: 0xF},
		{Func: 1, PC: 1, Op: isa.OpCall, Mask: 0xF},
		{Func: 2, PC: 0, Op: isa.OpRet, Mask: 0xF},
		{Func: 1, PC: 2, Op: isa.OpRet, Mask: 0xF},
	}
	s := trace.Summarize(events, nil)
	if s.WarpInstructions != 5 || s.Calls != 2 || s.Returns != 2 {
		t.Fatalf("summary: %+v", s)
	}
	if s.MaxCallDepth != 2 {
		t.Errorf("depth = %d", s.MaxCallDepth)
	}
	if s.ByFunc[1] != 3 {
		t.Errorf("byfunc: %v", s.ByFunc)
	}
	if s.LaneInstructions != 20 {
		t.Errorf("lanes = %d", s.LaneInstructions)
	}
	if s.ByOp[isa.OpCall] != 2 {
		t.Errorf("byop: %v", s.ByOp)
	}
}
