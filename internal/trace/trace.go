// Package trace captures and analyses dynamic instruction traces from
// the simulator — the role NVBit plays in the paper's methodology
// (§V-A: "the traces are generated using NVBit").
//
// A Recorder attaches to a sim.GPU as its TraceSink and appends one
// compact event per issued warp-instruction. Traces serialise to a
// stream format with per-record delta compression (function and warp
// ids repeat heavily), and Summary recomputes workload characteristics
// — instruction mix, CPKI, per-function dynamic counts, call depth —
// from the trace alone, which tests cross-check against the
// simulator's own statistics.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"carsgo/internal/isa"
)

// Event is one issued warp-instruction.
type Event struct {
	SM   uint8
	GWID uint32 // grid-global warp id
	Func uint32 // function index
	PC   uint32
	Op   isa.Op
	Mask uint32 // active lanes
}

// Recorder collects events in memory; it implements sim.TraceSink.
type Recorder struct {
	Events []Event

	// Cap bounds memory use; once reached, further events are counted
	// in Dropped instead of stored. Zero means unbounded.
	Cap     int
	Dropped uint64
}

// OnIssue appends one event (sim.TraceSink).
func (r *Recorder) OnIssue(sm, gwid int, fn, pc int, op isa.Op, mask uint32) {
	if r.Cap > 0 && len(r.Events) >= r.Cap {
		r.Dropped++
		return
	}
	r.Events = append(r.Events, Event{
		SM: uint8(sm), GWID: uint32(gwid), Func: uint32(fn),
		PC: uint32(pc), Op: op, Mask: mask,
	})
}

// traceMagic heads a serialised trace stream.
var traceMagic = [4]byte{'C', 'T', 'R', '1'}

// Write serialises events with delta compression: records carry a tag
// byte marking which fields changed since the previous record from the
// same encoder (warps issue long runs of sequential PCs in one
// function, so most records are 3-6 bytes).
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	var count [8]byte
	binary.LittleEndian.PutUint64(count[:], uint64(len(events)))
	if _, err := bw.Write(count[:]); err != nil {
		return err
	}
	var prev Event
	for i := range events {
		e := events[i]
		var tag uint8
		if e.SM != prev.SM {
			tag |= 1 << 0
		}
		if e.GWID != prev.GWID {
			tag |= 1 << 1
		}
		if e.Func != prev.Func {
			tag |= 1 << 2
		}
		if e.PC != prev.PC+1 {
			tag |= 1 << 3
		}
		if e.Mask != prev.Mask {
			tag |= 1 << 4
		}
		bw.WriteByte(tag)
		bw.WriteByte(uint8(e.Op))
		if tag&(1<<0) != 0 {
			bw.WriteByte(e.SM)
		}
		if tag&(1<<1) != 0 {
			writeUvarint(bw, uint64(e.GWID))
		}
		if tag&(1<<2) != 0 {
			writeUvarint(bw, uint64(e.Func))
		}
		if tag&(1<<3) != 0 {
			writeUvarint(bw, uint64(e.PC))
		}
		if tag&(1<<4) != 0 {
			var m [4]byte
			binary.LittleEndian.PutUint32(m[:], e.Mask)
			bw.Write(m[:])
		}
		prev = e
	}
	return bw.Flush()
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

// Read deserialises a trace stream.
func Read(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var countRaw [8]byte
	if _, err := io.ReadFull(br, countRaw[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint64(countRaw[:])
	if count > 1<<32 {
		return nil, fmt.Errorf("trace: implausible event count %d", count)
	}
	events := make([]Event, 0, count)
	var prev Event
	for i := uint64(0); i < count; i++ {
		tag, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		opb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		e := prev
		e.Op = isa.Op(opb)
		e.PC = prev.PC + 1
		if tag&(1<<0) != 0 {
			b, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			e.SM = b
		}
		if tag&(1<<1) != 0 {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			e.GWID = uint32(v)
		}
		if tag&(1<<2) != 0 {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			e.Func = uint32(v)
		}
		if tag&(1<<3) != 0 {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			e.PC = uint32(v)
		}
		if tag&(1<<4) != 0 {
			var m [4]byte
			if _, err := io.ReadFull(br, m[:]); err != nil {
				return nil, err
			}
			e.Mask = binary.LittleEndian.Uint32(m[:])
		}
		events = append(events, e)
		prev = e
	}
	return events, nil
}

// Summary holds workload characteristics recomputed from a trace.
type Summary struct {
	WarpInstructions uint64
	LaneInstructions uint64
	Calls            uint64
	Returns          uint64
	CPKI             float64
	MaxCallDepth     int

	// ByOp counts warp-instructions per opcode.
	ByOp map[isa.Op]uint64

	// ByFunc counts warp-instructions per function index.
	ByFunc map[uint32]uint64

	// SpillFillInstr counts local ops marked as ABI spills in prog.
	SpillFillInstr uint64
}

// Summarize analyses events against the program that produced them.
// prog may be nil, in which case spill classification is skipped.
func Summarize(events []Event, prog *isa.Program) *Summary {
	s := &Summary{ByOp: map[isa.Op]uint64{}, ByFunc: map[uint32]uint64{}}
	depth := map[uint32]int{}
	for i := range events {
		e := &events[i]
		s.WarpInstructions++
		s.LaneInstructions += uint64(popcount32(e.Mask))
		s.ByOp[e.Op]++
		s.ByFunc[e.Func]++
		switch {
		case e.Op.IsCall():
			s.Calls++
			depth[e.GWID]++
			if depth[e.GWID] > s.MaxCallDepth {
				s.MaxCallDepth = depth[e.GWID]
			}
		case e.Op == isa.OpRet:
			s.Returns++
			// Divergent early returns re-execute RET per path; depth
			// tracking is approximate under divergence, matching how
			// trace-based tools estimate it.
			if depth[e.GWID] > 0 {
				depth[e.GWID]--
			}
		}
		if prog != nil && e.Op.IsLocal() {
			fn := int(e.Func)
			if fn < len(prog.Funcs) && int(e.PC) < len(prog.Funcs[fn].Code) {
				if prog.Funcs[fn].Code[e.PC].Spill {
					s.SpillFillInstr++
				}
			}
		}
	}
	if s.WarpInstructions > 0 {
		s.CPKI = 1000 * float64(s.Calls) / float64(s.WarpInstructions)
	}
	return s
}

func popcount32(m uint32) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}
