package cars_test

import (
	"testing"

	"carsgo/internal/abi"
	"carsgo/internal/callgraph"
	"carsgo/internal/cars"
	"carsgo/internal/kir"
)

// buildChain links a kernel calling a linear chain of depth functions,
// each saving the given register counts, and returns its analysis.
func buildChain(t *testing.T, saved ...int) *callgraph.Analysis {
	t.Helper()
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("k")
	k.MovI(4, 1)
	if len(saved) > 0 {
		k.Call(fname(0))
	}
	k.Exit()
	m.AddFunc(k.MustBuild())
	for i, c := range saved {
		b := kir.NewFunc(fname(i)).SetCalleeSaved(c)
		b.Mov(16, 4)
		if i+1 < len(saved) {
			b.Call(fname(i + 1))
		}
		b.Ret()
		m.AddFunc(b.MustBuild())
	}
	prog, err := abi.Link(abi.CARS, m)
	if err != nil {
		t.Fatal(err)
	}
	a, err := callgraph.Analyze(prog, "k")
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func fname(i int) string {
	return string(rune('a'+i)) + "fn"
}

func TestPlanLadder(t *testing.T) {
	a := buildChain(t, 9, 5, 3) // FRUs 10, 6, 4
	p := cars.NewPlan(a, 64, 2048)
	if p.MaxFRU != 10 {
		t.Fatalf("MaxFRU = %d", p.MaxFRU)
	}
	if got := p.LowLevel().StackSlots; got != 10 {
		t.Fatalf("Low stack = %d", got)
	}
	if got := p.HighLevel().StackSlots; got != 20 {
		t.Fatalf("High stack = %d (want 10+6+4)", got)
	}
	// Ladder ascends and ends at High.
	prev := -1
	for _, l := range p.Levels {
		if l.StackSlots < prev {
			t.Fatalf("ladder not ascending: %+v", p.Levels)
		}
		prev = l.StackSlots
	}
	if p.Levels[len(p.Levels)-1].Kind != cars.KindHigh {
		t.Fatal("ladder must end at High")
	}
}

func TestPlanHighFree(t *testing.T) {
	a := buildChain(t, 3, 2)
	// Other limits allow only 8 warps; 2048/8 = 256 regs per warp, far
	// above the High demand: High is free.
	p := cars.NewPlan(a, 8, 2048)
	if !p.HighFree {
		t.Fatal("HighFree should hold with register space to spare")
	}
	// With 64 warps the math tightens: 2048/64 = 32 < base+high.
	a2 := buildChain(t, 40, 40)
	p2 := cars.NewPlan(a2, 64, 2048)
	if p2.HighFree {
		t.Fatal("HighFree should not hold")
	}
}

func TestNearestLevel(t *testing.T) {
	a := buildChain(t, 4, 4, 4, 4, 4, 4) // deep chain: ladder has NxLows
	p := cars.NewPlan(a, 64, 2048)
	if got := p.NearestLevel(cars.Level{Kind: cars.KindHigh}); got != len(p.Levels)-1 {
		t.Fatalf("NearestLevel(High) = %d", got)
	}
	if got := p.NearestLevel(cars.Level{Kind: cars.KindLow, N: 1}); got != 0 {
		t.Fatalf("NearestLevel(Low) = %d", got)
	}
	// A multiplier that merged away resolves to the closest stack size.
	got := p.NearestLevel(cars.Level{Kind: cars.KindNxLow, N: 16})
	want := p.NearestLevel(cars.Level{Kind: cars.KindHigh})
	if p.Levels[got].StackSlots > p.Levels[want].StackSlots {
		t.Fatalf("NearestLevel(16xLow) = %d beyond High", got)
	}
}

func TestControllerSplitsAndConverges(t *testing.T) {
	a := buildChain(t, 40, 40, 40)
	p := cars.NewPlan(a, 64, 2048)
	ctl := cars.NewController()
	ks := ctl.Launch("k", p)
	pol := cars.AdaptivePolicy()

	hi := len(p.Levels) - 1
	if ks.InitialLevel(0, pol) != 0 || ks.InitialLevel(1, pol) != hi {
		t.Fatal("first launch must split SMs between Low and High")
	}
	// High blocks complete faster per unit of concurrency.
	for i := 0; i < 4; i++ {
		ks.Record(0, 10000, 4) // Low: cost 2500
		ks.Record(hi, 3000, 2) // High: cost 1500
	}
	// A Low SM should now walk upward.
	if next := ks.NextLevel(0, pol); next != 1 {
		t.Fatalf("Low SM next level = %d, want 1 (one step up)", next)
	}
	// A High SM holds.
	if next := ks.NextLevel(hi, pol); next != hi {
		t.Fatalf("High SM next level = %d, want %d", next, hi)
	}
	ks.FinishLaunch()
	ks2 := ctl.Launch("k", p)
	if ks2.InitialLevel(0, pol) != hi {
		t.Fatal("second launch should start from the remembered best level")
	}
}

func TestControllerPrefersLow(t *testing.T) {
	a := buildChain(t, 40, 40, 40)
	p := cars.NewPlan(a, 64, 2048)
	ks := cars.NewController().Launch("k", p)
	pol := cars.AdaptivePolicy()
	hi := len(p.Levels) - 1
	for i := 0; i < 4; i++ {
		ks.Record(0, 2000, 8)  // Low: cost 250
		ks.Record(hi, 3000, 2) // High: cost 1500
	}
	if next := ks.NextLevel(hi, pol); next != hi-1 {
		t.Fatalf("High SM should step down, got %d", next)
	}
	if next := ks.NextLevel(0, pol); next != 0 {
		t.Fatalf("Low SM should hold, got %d", next)
	}
}

func TestForcedPolicyPins(t *testing.T) {
	a := buildChain(t, 40, 40, 40)
	p := cars.NewPlan(a, 64, 2048)
	ks := cars.NewController().Launch("k", p)
	pol := cars.ForcedPolicy(cars.Level{Kind: cars.KindHigh})
	hi := len(p.Levels) - 1
	if ks.InitialLevel(3, pol) != hi {
		t.Fatal("forced High ignored")
	}
	ks.Record(0, 1, 1)
	ks.Record(hi, 1e6, 1)
	if ks.NextLevel(hi, pol) != hi {
		t.Fatal("forced policy must not adapt")
	}
}

func TestHighFreeAlwaysHigh(t *testing.T) {
	a := buildChain(t, 2, 2)
	p := cars.NewPlan(a, 4, 2048)
	if !p.HighFree {
		t.Skip("plan unexpectedly tight")
	}
	ks := cars.NewController().Launch("k", p)
	pol := cars.AdaptivePolicy()
	for sm := 0; sm < 8; sm++ {
		if got := ks.InitialLevel(sm, pol); got != len(p.Levels)-1 {
			t.Fatalf("SM %d initial level %d, want High", sm, got)
		}
	}
}

func TestCyclicPlan(t *testing.T) {
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("k")
	k.MovI(4, 3).Call("rec").Exit()
	m.AddFunc(k.MustBuild())
	rec := kir.NewFunc("rec").SetCalleeSaved(2)
	rec.Mov(16, 4).MovI(17, 0).Call("rec").Ret()
	m.AddFunc(rec.MustBuild())
	prog, err := abi.Link(abi.CARS, m)
	if err != nil {
		t.Fatal(err)
	}
	a, err := callgraph.Analyze(prog, "k")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Cyclic {
		t.Fatal("recursion not detected")
	}
	p := cars.NewPlan(a, 64, 2048)
	if !p.Cyclic {
		t.Fatal("plan must mark cyclic graphs")
	}
	// One iteration assumed: High = one frame of the recursive function.
	if got := p.HighLevel().StackSlots; got != 3 {
		t.Fatalf("cyclic High stack = %d, want 3", got)
	}
}

func TestPlanEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		saved     []int
		warps     int
		regSlots  int
		wantSlots []int // ladder StackSlots, in order
		wantHigh  int
	}{
		{
			// low == high: a single-call kernel where Low already covers
			// the whole demand must not emit a duplicate Low/High pair.
			name: "lowEqualsHigh", saved: []int{9},
			warps: 64, regSlots: 2048,
			wantSlots: []int{10}, wantHigh: 10,
		},
		{
			// No calls at all: both watermarks are zero; one High level.
			name: "callFree", saved: nil,
			warps: 64, regSlots: 2048,
			wantSlots: []int{0}, wantHigh: 0,
		},
		{
			// low*2 == high: the N× sequence must stop exactly at High
			// with no 2xLow duplicate of the same allocation.
			name: "doubleLandsOnHigh", saved: []int{9, 9},
			warps: 64, regSlots: 2048,
			wantSlots: []int{10, 20}, wantHigh: 20,
		},
		{
			// Deep chain overshooting the register file: High caps at
			// capacity minus the kernel base, and NxLow points at or
			// above the cap are dropped.
			name: "capacityCap", saved: []int{39, 39, 39, 39, 39, 39},
			warps: 64, regSlots: 128,
			wantHigh: -1, // computed below: regSlots - base
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := buildChain(t, tc.saved...)
			p := cars.NewPlan(a, tc.warps, tc.regSlots)
			if tc.wantHigh == -1 {
				tc.wantHigh = tc.regSlots - a.KernelBase
			}
			if got := p.HighLevel().StackSlots; got != tc.wantHigh {
				t.Fatalf("High stack = %d, want %d (levels %+v)", got, tc.wantHigh, p.Levels)
			}
			if tc.wantSlots != nil {
				if len(p.Levels) != len(tc.wantSlots) {
					t.Fatalf("ladder %+v, want slots %v", p.Levels, tc.wantSlots)
				}
				for i, want := range tc.wantSlots {
					if p.Levels[i].StackSlots != want {
						t.Fatalf("level %d slots = %d, want %d", i, p.Levels[i].StackSlots, want)
					}
				}
			}
			// Invariants for every plan: strictly ascending allocations
			// (no duplicates) and a High terminator within capacity.
			for i := 1; i < len(p.Levels); i++ {
				if p.Levels[i].StackSlots <= p.Levels[i-1].StackSlots {
					t.Fatalf("ladder has duplicate/descending point: %+v", p.Levels)
				}
			}
			if p.Levels[len(p.Levels)-1].Kind != cars.KindHigh {
				t.Fatalf("ladder must end at High: %+v", p.Levels)
			}
			if a.KernelBase+p.HighLevel().StackSlots > tc.regSlots {
				t.Fatalf("High exceeds register file: base %d + %d > %d",
					a.KernelBase, p.HighLevel().StackSlots, tc.regSlots)
			}
		})
	}
}

func TestCyclicPlanCapsAtCapacity(t *testing.T) {
	// Mutual recursion: one assumed iteration puts both frames on the
	// stack, so High exceeds Low and a small register file forces the
	// capacity cap to bind between them.
	m := &kir.Module{Name: "m"}
	k := kir.NewKernel("k")
	k.MovI(4, 3).Call("even").Exit()
	m.AddFunc(k.MustBuild())
	even := kir.NewFunc("even").SetCalleeSaved(30)
	even.Mov(16, 4).Call("odd").Ret()
	m.AddFunc(even.MustBuild())
	odd := kir.NewFunc("odd").SetCalleeSaved(40)
	odd.Mov(16, 4).Call("even").Ret()
	m.AddFunc(odd.MustBuild())
	prog, err := abi.Link(abi.CARS, m)
	if err != nil {
		t.Fatal(err)
	}
	a, err := callgraph.Analyze(prog, "k")
	if err != nil {
		t.Fatal(err)
	}
	low := a.StackSlots(a.LowWatermark())
	high := a.StackSlots(a.HighWatermark())
	if high <= low {
		t.Fatalf("test premise broken: high %d must exceed low %d", high, low)
	}
	// A file that holds base+low but not base+high: High caps at
	// capacity while still marking the graph cyclic.
	regSlots := a.KernelBase + low + (high-low)/2
	p := cars.NewPlan(a, 64, regSlots)
	if !p.Cyclic {
		t.Fatal("plan must mark cyclic graphs")
	}
	if got := p.HighLevel().StackSlots; a.KernelBase+got > regSlots {
		t.Fatalf("cyclic High %d overflows the %d-slot file (base %d)", got, regSlots, a.KernelBase)
	}
	if got := p.HighLevel().StackSlots; got < low {
		// Never below one frame: EnsureSpace faults on a frame that
		// cannot fit the hardware stack at all.
		t.Fatalf("High %d below the single-frame floor %d", got, low)
	}
}

func TestLevelNames(t *testing.T) {
	if (cars.Level{Kind: cars.KindLow, N: 1}).Name() != "Low" {
		t.Error("Low name")
	}
	if (cars.Level{Kind: cars.KindNxLow, N: 4}).Name() != "4xLow" {
		t.Error("NxLow name")
	}
	if (cars.Level{Kind: cars.KindHigh}).Name() != "High" {
		t.Error("High name")
	}
}

func TestBestLevelAndBlocks(t *testing.T) {
	a := buildChain(t, 40, 40, 40)
	p := cars.NewPlan(a, 64, 2048)
	ks := cars.NewController().Launch("k", p)
	if ks.BestLevel() != -1 {
		t.Error("best level before any measurement")
	}
	ks.Record(1, 500, 2)
	ks.Record(0, 900, 2)
	if ks.BestLevel() != 1 {
		t.Errorf("best level = %d", ks.BestLevel())
	}
	if ks.Blocks(1) != 1 || ks.Blocks(0) != 1 || ks.Blocks(2) != 0 {
		t.Error("block counts wrong")
	}
	if ks.Plan() != p {
		t.Error("plan accessor")
	}
}

func TestControllerReusesStateAcrossLaunches(t *testing.T) {
	a := buildChain(t, 40, 40, 40)
	p := cars.NewPlan(a, 64, 2048)
	ctl := cars.NewController()
	ks1 := ctl.Launch("k", p)
	ks1.Record(0, 100, 1)
	ks2 := ctl.Launch("k", p)
	if ks2 != ks1 {
		t.Error("same kernel should reuse its state machine")
	}
	if ks2.Blocks(0) != 1 {
		t.Error("measurements lost across launches")
	}
	// A different kernel gets fresh state.
	if ctl.Launch("other", p) == ks1 {
		t.Error("kernels must not share state")
	}
}

func TestRegsPerWarpLadder(t *testing.T) {
	a := buildChain(t, 9, 5, 3)
	p := cars.NewPlan(a, 64, 2048)
	for i := range p.Levels {
		want := p.Base + p.Levels[i].StackSlots
		if got := p.RegsPerWarp(i); got != want {
			t.Errorf("level %d: regs %d, want %d", i, got, want)
		}
	}
	if p.LevelIndex(cars.Level{Kind: cars.KindNxLow, N: 99}) != -1 {
		t.Error("phantom level found")
	}
}

func TestWalkProbesUnexploredTowardBest(t *testing.T) {
	a := buildChain(t, 40, 40, 40, 40, 40)
	p := cars.NewPlan(a, 64, 2048)
	if len(p.Levels) < 4 {
		t.Skip("ladder too short for probe test")
	}
	ks := cars.NewController().Launch("k", p)
	pol := cars.AdaptivePolicy()
	hi := len(p.Levels) - 1
	ks.Record(0, 10_000, 1)
	ks.Record(hi, 1_000, 1)
	// A low SM with unexplored neighbours probes one step toward High.
	if next := ks.NextLevel(0, pol); next != 1 {
		t.Errorf("probe step = %d, want 1", next)
	}
	// And the reverse direction.
	ks2 := cars.NewController().Launch("k2", p)
	ks2.Record(0, 1_000, 1)
	ks2.Record(hi, 10_000, 1)
	if next := ks2.NextLevel(hi, pol); next != hi-1 {
		t.Errorf("downward probe = %d, want %d", next, hi-1)
	}
}

func TestStackAccessors(t *testing.T) {
	var s cars.Stack
	s.Reset(16)
	if s.TopFrame() != nil {
		t.Error("top frame on empty stack")
	}
	s.Call()
	s.Push(2)
	f := s.TopFrame()
	if f == nil || f.Slots() != 3 {
		t.Fatalf("frame = %+v", f)
	}
	if got := cars.SpillAddrSlot(cars.SpillWindowSlots + 5); got != 5 {
		t.Errorf("spill addr wrap = %d", got)
	}
	if _, err := s.Ret(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ret(); err == nil {
		t.Error("ret on empty frame list accepted")
	}
	if err := s.Push(1); err == nil {
		t.Error("push outside frame accepted")
	}
}

func TestPopBelowFrameRejected(t *testing.T) {
	var s cars.Stack
	s.Reset(8)
	s.Call()
	s.Push(2)
	if err := s.Pop(3); err == nil {
		t.Error("pop below RFP accepted")
	}
}

func TestCallWindowGeometry(t *testing.T) {
	var s cars.Stack
	s.Reset(32)
	s.CallWindow(10)
	if s.RenameLen() != 9 {
		t.Errorf("window rename len = %d, want size-1", s.RenameLen())
	}
	f := s.TopFrame()
	if f.Slots() != 10 {
		t.Errorf("window frame slots = %d", f.Slots())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ret(); err != nil {
		t.Fatal(err)
	}
	if s.RSP != 0 || s.Depth() != 0 {
		t.Error("window frame not fully released")
	}
}
