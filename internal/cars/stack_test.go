package cars

import (
	"math/rand"
	"testing"
)

func mustOps(t *testing.T, s *Stack, fru int) []SpillOp {
	t.Helper()
	ops, err := s.EnsureSpace(fru)
	if err != nil {
		t.Fatal(err)
	}
	return ops
}

func TestCallPushPopRet(t *testing.T) {
	var s Stack
	s.Reset(16)
	// Kernel calls f1 with 3 callee-saved regs: FRU = 4.
	mustOps(t, &s, 4)
	s.Call()
	if s.RFP != 1 || s.RSP != 1 {
		t.Fatalf("after call: RFP=%d RSP=%d", s.RFP, s.RSP)
	}
	if err := s.Push(3); err != nil {
		t.Fatal(err)
	}
	if s.RenameLen() != 3 {
		t.Fatalf("rename len = %d", s.RenameLen())
	}
	// R16 -> slot RFP+0 = 1, R18 -> 3.
	if s.SlotFor(0) != 1 || s.SlotFor(2) != 3 {
		t.Fatalf("slots: %d %d", s.SlotFor(0), s.SlotFor(2))
	}
	if err := s.Pop(3); err != nil {
		t.Fatal(err)
	}
	fill, err := s.Ret()
	if err != nil || fill != nil {
		t.Fatalf("ret: fill=%v err=%v", fill, err)
	}
	if s.RFP != 0 || s.RSP != 0 || s.Depth() != 0 {
		t.Fatalf("after ret: %+v", s)
	}
}

func TestNestedRenaming(t *testing.T) {
	var s Stack
	s.Reset(32)
	// f1 pushes 3, f2 pushes 2: R16/R17 in f2 must map to f2's frame.
	s.EnsureSpace(4)
	s.Call()
	s.Push(3)
	f1r16 := s.SlotFor(0)
	s.EnsureSpace(3)
	s.Call()
	s.Push(2)
	if s.RenameLen() != 2 {
		t.Fatalf("f2 rename len = %d", s.RenameLen())
	}
	f2r16 := s.SlotFor(0)
	if f2r16 == f1r16 {
		t.Fatal("f2's R16 aliases f1's")
	}
	s.Pop(2)
	if _, err := s.Ret(); err != nil {
		t.Fatal(err)
	}
	if s.RenameLen() != 3 || s.SlotFor(0) != f1r16 {
		t.Fatalf("f1 renaming not restored: len=%d slot=%d", s.RenameLen(), s.SlotFor(0))
	}
}

func TestTrapSpillAndFill(t *testing.T) {
	var s Stack
	s.Reset(8)
	// Frame A: FRU 5 (4 saved + RFP).
	if ops := mustOps(t, &s, 5); len(ops) != 0 {
		t.Fatal("no spill expected for first frame")
	}
	s.Call()
	s.Push(4)
	// Frame B: FRU 5 again; only 3 slots free -> A spills (Fig. 6).
	ops, err2 := s.EnsureSpace(5)
	if err2 != nil {
		t.Fatal(err2)
	}
	if len(ops) != 1 || ops[0].Fill || ops[0].StartSlot != 0 || ops[0].Count != 5 {
		t.Fatalf("spill ops = %+v", ops)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s.Call()
	s.Push(4)
	if s.Free() != 3 {
		t.Fatalf("free = %d", s.Free())
	}
	// Return from B: A fills back.
	s.Pop(4)
	fill, err := s.Ret()
	if err != nil {
		t.Fatal(err)
	}
	if fill == nil || !fill.Fill || fill.StartSlot != 0 || fill.Count != 5 {
		t.Fatalf("fill = %+v", fill)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.RenameLen() != 4 {
		t.Fatalf("A's renaming not restored: %d", s.RenameLen())
	}
}

func TestFrameLargerThanStack(t *testing.T) {
	var s Stack
	s.Reset(4)
	if _, err := s.EnsureSpace(5); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestCircularWrapAround(t *testing.T) {
	var s Stack
	s.Reset(8)
	// Deep recursion with FRU 3: frames wrap around the 8-slot stack.
	for depth := 0; depth < 20; depth++ {
		mustOps(t, &s, 3)
		s.Call()
		if err := s.Push(2); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if s.RSP-s.Bottom > 8 {
			t.Fatalf("depth %d: resident %d overflows", depth, s.RSP-s.Bottom)
		}
	}
	for depth := 19; depth >= 0; depth-- {
		s.Pop(2)
		if _, err := s.Ret(); err != nil {
			t.Fatalf("unwind %d: %v", depth, err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("unwind %d: %v", depth, err)
		}
	}
	if s.RSP != 0 || s.Depth() != 0 {
		t.Fatalf("not fully unwound: %+v", s)
	}
}

// TestStackRandomised drives random call trees through a small stack
// and checks every invariant after every operation, plus the value
// round-trip through a simulated spill area.
func TestStackRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		var s Stack
		slots := 4 + rng.Intn(20)
		s.Reset(slots)
		var frames []stackFrame
		for step := 0; step < 400; step++ {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			call := rng.Intn(2) == 0 && len(frames) < 30
			if len(frames) == 0 {
				call = true
			}
			if call {
				pushed := rng.Intn(minInt(slots-1, 6))
				if _, err := s.EnsureSpace(pushed + 1); err != nil {
					t.Fatalf("trial %d: ensure: %v", trial, err)
				}
				s.Call()
				if err := s.Push(pushed); err != nil {
					t.Fatalf("trial %d: push: %v", trial, err)
				}
				frames = append(frames, stackFrame{pushed})
			} else {
				f := frames[len(frames)-1]
				frames = frames[:len(frames)-1]
				if err := s.Pop(f.pushed); err != nil {
					t.Fatalf("trial %d: pop: %v", trial, err)
				}
				if _, err := s.Ret(); err != nil {
					t.Fatalf("trial %d: ret: %v", trial, err)
				}
				if s.RenameLen() != pushedOf(frames) {
					t.Fatalf("trial %d: rename len %d, want %d", trial, s.RenameLen(), pushedOf(frames))
				}
			}
		}
	}
}

type stackFrame struct{ pushed int }

func pushedOf(frames []stackFrame) int {
	if len(frames) == 0 {
		return 0
	}
	return frames[len(frames)-1].pushed
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
