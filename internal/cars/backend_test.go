package cars_test

import (
	"strings"
	"testing"

	"carsgo/internal/cars"
)

func TestNewWindowPlanLadder(t *testing.T) {
	cases := []struct {
		name      string
		base      int
		maxFrame  int
		spill     int
		warps     int
		regSlots  int
		wantSlots []int // ladder StackSlots, in order
		wantFree  bool
	}{
		{
			// The canonical shape: Low holds the hottest frame, NxLow
			// doubles toward High, High covers the whole spill segment.
			name: "ladder", base: 8, maxFrame: 4, spill: 20,
			warps: 64, regSlots: 2048,
			wantSlots: []int{4, 8, 16, 20}, wantFree: true,
		},
		{
			// Single dominant frame: Low already covers everything, so
			// the ladder must not emit a duplicate Low/High pair.
			name: "lowEqualsHigh", base: 8, maxFrame: 20, spill: 20,
			warps: 64, regSlots: 2048,
			wantSlots: []int{20}, wantFree: true,
		},
		{
			// Zero-spill kernel: one degenerate zero-word High point.
			name: "zeroSpill", base: 8, maxFrame: 0, spill: 0,
			warps: 64, regSlots: 2048,
			wantSlots: []int{0}, wantFree: true,
		},
		{
			// Spill segment beyond the register file: High caps at the
			// capacity left over the base, like NewPlan's High cap.
			name: "capacityCap", base: 8, maxFrame: 4, spill: 100,
			warps: 64, regSlots: 40,
			wantSlots: []int{4, 8, 16, 32}, wantFree: false,
		},
		{
			// Cap tighter than Low: the plan still keeps Low viable (a
			// window smaller than one frame absorbs nothing), collapsing
			// to a single design point.
			name: "capBelowLow", base: 30, maxFrame: 10, spill: 50,
			warps: 64, regSlots: 32,
			wantSlots: []int{10}, wantFree: false,
		},
		{
			// Doubling landing exactly on High: no duplicate point.
			name: "doubleLandsOnHigh", base: 8, maxFrame: 5, spill: 10,
			warps: 64, regSlots: 2048,
			wantSlots: []int{5, 10}, wantFree: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := cars.NewWindowPlan(tc.base, tc.maxFrame, tc.spill, tc.warps, tc.regSlots)
			if p.Backend != cars.BackendRFCache {
				t.Fatalf("Backend = %v, want rfcache", p.Backend)
			}
			if len(p.Levels) != len(tc.wantSlots) {
				t.Fatalf("ladder %+v, want slots %v", p.Levels, tc.wantSlots)
			}
			for i, want := range tc.wantSlots {
				if p.Levels[i].StackSlots != want {
					t.Fatalf("level %d slots = %d, want %d (%+v)", i, p.Levels[i].StackSlots, want, p.Levels)
				}
			}
			// Shared ladder invariants: strictly ascending, High last.
			for i := 1; i < len(p.Levels); i++ {
				if p.Levels[i].StackSlots <= p.Levels[i-1].StackSlots {
					t.Fatalf("ladder has duplicate/descending point: %+v", p.Levels)
				}
			}
			if p.Levels[len(p.Levels)-1].Kind != cars.KindHigh {
				t.Fatalf("ladder must end at High: %+v", p.Levels)
			}
			if p.HighFree != tc.wantFree {
				t.Fatalf("HighFree = %v, want %v", p.HighFree, tc.wantFree)
			}
		})
	}
}

func TestNewSmemPlan(t *testing.T) {
	p := cars.NewSmemPlan(24)
	if p.Backend != cars.BackendSmemSpill {
		t.Fatalf("Backend = %v, want smem", p.Backend)
	}
	if p.Base != 24 {
		t.Fatalf("Base = %d, want 24", p.Base)
	}
	// RegDem has no watermark: exactly one zero-register design point,
	// still shaped like a ladder so level indices stay meaningful.
	if len(p.Levels) != 1 || p.Levels[0].Kind != cars.KindHigh || p.Levels[0].StackSlots != 0 {
		t.Fatalf("smem ladder = %+v, want single zero-slot High", p.Levels)
	}
}

func TestParseBackendRoundTrip(t *testing.T) {
	for _, b := range cars.Backends {
		got, err := cars.ParseBackend(b.String())
		if err != nil {
			t.Fatalf("ParseBackend(%q): %v", b.String(), err)
		}
		if got != b {
			t.Fatalf("ParseBackend(%q) = %v, want %v", b.String(), got, b)
		}
	}
	if _, err := cars.ParseBackend("vliw"); err == nil {
		t.Fatal("ParseBackend must reject unknown backends")
	}
	if s := cars.Backend(7).String(); !strings.Contains(s, "7") {
		t.Fatalf("undeclared backend renders %q, want the ordinal visible", s)
	}
}

func TestForcedBackendPolicy(t *testing.T) {
	lvl := cars.Level{Kind: cars.KindNxLow, N: 2, StackSlots: 12}
	pol := cars.ForcedBackendPolicy(cars.BackendRFCache, lvl)
	if pol.Backend != cars.BackendRFCache || pol.Adaptive || pol.Forced != lvl {
		t.Fatalf("policy = %+v, want forced rfcache at %+v", pol, lvl)
	}
	// The zero backend is CARS, so ForcedBackendPolicy(BackendCARS, l)
	// must be indistinguishable from the pre-lattice ForcedPolicy.
	if cars.ForcedBackendPolicy(cars.BackendCARS, lvl) != cars.ForcedPolicy(lvl) {
		t.Fatal("CARS backend policy must equal ForcedPolicy")
	}
}
