package cars

// This file generalises the CARS allocation ladder into a spill-policy
// lattice: CARS register stacks are one backend among three. The other
// two rungs come from the competing designs PAPERS.md names — RegDem's
// shared-memory register spilling and a compiler-assisted register
// file cache — re-expressed over the same Plan/Level machinery so the
// static occupancy model, the watermark advisor, and the perf
// differential can score every backend through one interface.

import "fmt"

// Backend names one rung family of the spill-policy lattice.
type Backend uint8

const (
	// BackendCARS allocates per-warp register stacks with the
	// Low..High watermark ladder and trap fallback (this paper).
	BackendCARS Backend = iota
	// BackendSmemSpill is RegDem-style shared-memory spilling: the
	// callee-saved frames live in the smem segment, so occupancy is
	// traded through shared-memory pressure instead of register
	// pressure, and every spill pays bank-conflict-serialised smem
	// traffic.
	BackendSmemSpill
	// BackendRFCache fronts the shared-memory spill frames with a
	// bounded per-thread register window that absorbs the hottest
	// (stack-top) spill slots at register cost: occupancy is traded
	// through the window size.
	BackendRFCache
)

// Backends lists every declared backend in lattice order. New backends
// must be appended here; the backendexhaustive lint analyzer keeps
// switch statements over Backend in sync with this list.
var Backends = []Backend{BackendCARS, BackendSmemSpill, BackendRFCache}

// String renders the backend the way CLI flags and reports spell it.
func (b Backend) String() string {
	switch b {
	case BackendCARS:
		return "cars"
	case BackendSmemSpill:
		return "smem"
	case BackendRFCache:
		return "rfcache"
	}
	return fmt.Sprintf("Backend(%d)", uint8(b))
}

// ParseBackend resolves a CLI spelling to a Backend.
func ParseBackend(s string) (Backend, error) {
	for _, b := range Backends {
		if s == b.String() {
			return b, nil
		}
	}
	return 0, fmt.Errorf("unknown backend %q (want cars, smem, or rfcache)", s)
}

// ForcedBackendPolicy pins every thread block to one design point of
// one backend. For BackendCARS this is exactly ForcedPolicy; for the
// other backends the level indexes the backend's own ladder (the
// window ladder for the RF cache, the single full-frame point for
// shared-memory spilling).
func ForcedBackendPolicy(b Backend, l Level) Policy {
	return Policy{Backend: b, Forced: l}
}

// NewSmemPlan builds the (single-point) shared-memory spilling ladder:
// RegDem has no watermark to tune — every call spills its whole frame
// to the statically-sized smem segment, costing zero extra registers.
// The degenerate one-level plan keeps the backend addressable by the
// same ladder indices as the others.
func NewSmemPlan(base int) *Plan {
	return &Plan{
		Base:    base,
		Levels:  []Level{{Kind: KindHigh, StackSlots: 0}},
		Backend: BackendSmemSpill,
	}
}

// NewWindowPlan builds the RF-cache window ladder for a kernel whose
// per-thread shared-memory spill frame totals spillWords words and
// whose largest single function frame is maxFrameWords.
//
// The ladder mirrors NewPlan's shape over window sizes: Low is the
// smallest window that keeps the hottest single frame entirely in
// registers, the N×Low points double it, and High covers the whole
// spill segment — at High every spill access is absorbed, the
// "miss-free" analogue of CARS' trap-free High. StackSlots is the
// window size in warp-register slots beyond the kernel base (one
// cached spill word per thread costs one vector register per warp).
func NewWindowPlan(base, maxFrameWords, spillWords, maxWarpsOther, regSlotsPerSM int) *Plan {
	p := &Plan{Base: base, Backend: BackendRFCache}
	low := maxFrameWords
	high := spillWords
	if low > high {
		low = high
	}
	// The window lives in the register file: cap High at the capacity
	// left beyond the kernel base, exactly as NewPlan caps its High.
	if regSlotsPerSM > 0 {
		if maxStack := regSlotsPerSM - base; high > maxStack {
			if maxStack < low {
				maxStack = low
			}
			if maxStack < 0 {
				maxStack = 0
			}
			high = maxStack
		}
	}
	if low >= high {
		p.Levels = []Level{{Kind: KindHigh, StackSlots: high}}
	} else {
		p.Levels = append(p.Levels, Level{Kind: KindLow, N: 1, StackSlots: low})
		if low > 0 {
			for n := 2; low*n < high; n *= 2 {
				p.Levels = append(p.Levels, Level{Kind: KindNxLow, N: n, StackSlots: low * n})
			}
		}
		p.Levels = append(p.Levels, Level{Kind: KindHigh, StackSlots: high})
	}
	if maxWarpsOther > 0 {
		minRegsPerWarp := regSlotsPerSM / maxWarpsOther
		if minRegsPerWarp >= p.Base+high {
			p.HighFree = true
		}
	}
	return p
}
