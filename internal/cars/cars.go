// Package cars implements Concurrency-Aware Register Stacks: the
// register-stack allocation policies (§III-B), the per-warp RFP/RSP
// renaming stack with software-trap fallback (§III-A, §IV-A), and the
// dynamic reservation state machine (Fig. 5) that balances register
// stack depth against warp concurrency.
package cars

import (
	"fmt"

	"carsgo/internal/callgraph"
)

// LevelKind names an allocation design point.
type LevelKind uint8

const (
	// KindLow is the most-concurrency point: room for at least one call.
	KindLow LevelKind = iota
	// KindNxLow allocates N× the Low stack: the middle ground.
	KindNxLow
	// KindHigh is the least-concurrency point: the full MaxStackDepth.
	KindHigh
)

// Level is one allocation design point for a kernel.
type Level struct {
	Kind LevelKind
	N    int // multiplier for KindNxLow
	// StackSlots is the per-warp register-stack size in warp-register
	// slots beyond the kernel base.
	StackSlots int
}

// Name renders the level like the paper ("Low", "2xLow", "High").
func (l Level) Name() string {
	switch l.Kind {
	case KindLow:
		return "Low"
	case KindHigh:
		return "High"
	default:
		return fmt.Sprintf("%dxLow", l.N)
	}
}

// Policy selects how the runtime chooses a level.
type Policy struct {
	// Backend names the spill-policy lattice rung the level indexes.
	// The zero value is BackendCARS, so existing policies are CARS
	// policies unchanged.
	Backend Backend
	// Adaptive enables the Fig. 5 state machine. When false, Forced is
	// used for every thread block (the per-mechanism study of Fig. 14).
	Adaptive bool
	Forced   Level
}

// AdaptivePolicy is the default CARS behaviour.
func AdaptivePolicy() Policy { return Policy{Adaptive: true} }

// ForcedPolicy pins every thread block to one design point.
func ForcedPolicy(l Level) Policy { return Policy{Forced: l} }

// Plan is the per-kernel-launch allocation plan derived from the
// call-graph analysis and the launch's other occupancy limits.
type Plan struct {
	// Base is the kernel's base register demand per warp (slots).
	Base int
	// Levels are the available design points, ascending by StackSlots,
	// ending with High.
	Levels []Level
	// HighFree is true when every warp can receive the High allocation
	// without reducing occupancy ("register space to spare", §III-B).
	HighFree bool
	// Cyclic marks recursive call graphs, where High does not guarantee
	// zero spills/fills (§III-C).
	Cyclic bool
	// MaxFRU is the largest single function FRU; every level's stack is
	// at least this big so any single frame fits the hardware stack.
	MaxFRU int
	// Backend names the lattice rung whose ladder this is. The zero
	// value is BackendCARS: NewPlan builds CARS plans.
	Backend Backend
}

// NewPlan builds the level ladder for a kernel.
//
// maxWarpsOther is the warp count permitted by the non-register limits
// (threads, blocks, shared memory); regSlotsPerSM is the register file
// capacity in warp-register slots.
func NewPlan(a *callgraph.Analysis, maxWarpsOther, regSlotsPerSM int) *Plan {
	p := &Plan{
		Base:   a.KernelBase,
		Cyclic: a.Cyclic,
		MaxFRU: a.MaxFRU,
	}
	low := a.StackSlots(a.LowWatermark())
	high := a.StackSlots(a.HighWatermark())
	if high < low {
		high = low
	}
	// A warp can never own more than the register file: cap High at the
	// capacity left beyond the kernel base. Cyclic graphs already assume
	// one iteration, but a deep acyclic chain can still overshoot.
	if regSlotsPerSM > 0 {
		if maxStack := regSlotsPerSM - a.KernelBase; high > maxStack {
			if maxStack < low {
				maxStack = low
			}
			high = maxStack
		}
	}
	if high == low {
		// Degenerate ladder (call-free kernels, single-frame recursion):
		// Low and High coincide, so emit the single High design point
		// rather than two levels with identical allocations.
		p.Levels = []Level{{Kind: KindHigh, StackSlots: high}}
	} else {
		p.Levels = append(p.Levels, Level{Kind: KindLow, N: 1, StackSlots: low})
		if low > 0 {
			// The N× sequence stops strictly below High: low*n == high
			// would duplicate the High allocation under an NxLow name.
			for n := 2; low*n < high; n *= 2 {
				p.Levels = append(p.Levels, Level{Kind: KindNxLow, N: n, StackSlots: low * n})
			}
		}
		p.Levels = append(p.Levels, Level{Kind: KindHigh, StackSlots: high})
	}

	if maxWarpsOther > 0 {
		minRegsPerWarp := regSlotsPerSM / maxWarpsOther
		if minRegsPerWarp >= p.Base+high {
			p.HighFree = true
		}
	}
	return p
}

// HighLevel returns the High design point.
func (p *Plan) HighLevel() Level { return p.Levels[len(p.Levels)-1] }

// LowLevel returns the Low design point.
func (p *Plan) LowLevel() Level { return p.Levels[0] }

// LevelIndex locates a level equal to l in the ladder (-1 if absent).
func (p *Plan) LevelIndex(l Level) int {
	for i, x := range p.Levels {
		if x.Kind == l.Kind && x.N == l.N {
			return i
		}
	}
	return -1
}

// RegsPerWarp returns the total per-warp register demand (slots) at a
// ladder index.
func (p *Plan) RegsPerWarp(levelIdx int) int {
	return p.Base + p.Levels[levelIdx].StackSlots
}

// levelPerf tracks the running average thread-block latency at a level.
type levelPerf struct {
	blocks int
	total  float64
}

func (l *levelPerf) record(cost float64) {
	l.blocks++
	l.total += cost
}

func (l *levelPerf) avg() float64 {
	if l.blocks == 0 {
		return 0
	}
	return l.total / float64(l.blocks)
}

// KernelState is the dynamic reservation state machine for one named
// kernel (Fig. 5). Performance of thread blocks at each allocation level
// is measured and recorded; each SM adjusts the level used for newly
// spawned thread blocks toward the best recorded neighbour. The
// best-performing allocation is remembered across launches of the same
// named kernel.
type KernelState struct {
	plan     *Plan
	perf     []levelPerf
	started  int // remembered starting level for the next launch, -1 none
	launches int
}

// Controller holds per-kernel dynamic state across launches.
type Controller struct {
	kernels map[string]*KernelState
}

// NewController builds an empty controller.
func NewController() *Controller { return &Controller{kernels: map[string]*KernelState{}} }

// Launch returns (creating if needed) the state machine for a kernel
// launch, rebinding it to the launch's plan. Level indices are preserved
// across launches because the ladder is derived from the same call graph.
func (c *Controller) Launch(kernel string, plan *Plan) *KernelState {
	ks, ok := c.kernels[kernel]
	if !ok || len(ks.perf) != len(plan.Levels) {
		ks = &KernelState{plan: plan, perf: make([]levelPerf, len(plan.Levels)), started: -1}
		c.kernels[kernel] = ks
	} else {
		ks.plan = plan
	}
	ks.launches++
	return ks
}

// InitialLevel picks the level for SM index sm at launch time.
//
// If High costs no occupancy, everyone gets High. On the first launch,
// half the SMs run Low and half High (§III-B); on later launches, all
// SMs start from the best level recorded previously.
func (k *KernelState) InitialLevel(sm int, policy Policy) int {
	if !policy.Adaptive {
		return k.plan.NearestLevel(policy.Forced)
	}
	if k.plan.HighFree {
		return len(k.plan.Levels) - 1
	}
	if k.started >= 0 {
		return k.started
	}
	if sm%2 == 0 {
		return 0
	}
	return len(k.plan.Levels) - 1
}

// Record registers a completed thread block at a level. resident is
// the number of blocks sharing the SM while it ran; the recorded cost
// is latency divided by concurrency, approximating SM-cycles consumed
// per block so that high-occupancy levels are not penalised for
// interleaving more blocks.
func (k *KernelState) Record(levelIdx int, cycles int64, resident int) {
	if resident < 1 {
		resident = 1
	}
	k.perf[levelIdx].record(float64(cycles) / float64(resident))
}

// NextLevel picks the level for the next thread block spawned by an SM
// currently at cur. With measurements at both ends of the ladder, the
// state machine walks one step toward the better-performing neighbour;
// otherwise it holds position.
func (k *KernelState) NextLevel(cur int, policy Policy) int {
	if !policy.Adaptive {
		return cur
	}
	if k.plan.HighFree {
		return cur
	}
	lo, hi := 0, len(k.plan.Levels)-1
	if k.perf[lo].blocks == 0 || k.perf[hi].blocks == 0 {
		if k.started >= 0 {
			// Later launches explore from the remembered level only.
			return k.walk(cur)
		}
		return cur // still warming up both halves
	}
	return k.walk(cur)
}

// walk moves cur one step toward the best measured level, considering
// the recorded performance of cur and its immediate neighbours.
func (k *KernelState) walk(cur int) int {
	best := cur
	bestAvg := k.avgOrInf(cur)
	if cur > 0 {
		if a := k.avgOrInf(cur - 1); a < bestAvg {
			best, bestAvg = cur-1, a
		}
	}
	if cur < len(k.plan.Levels)-1 {
		if a := k.avgOrInf(cur + 1); a < bestAvg {
			best, bestAvg = cur+1, a
		}
	}
	if best == cur {
		// Unexplored neighbours toward the far measured optimum are
		// worth one probe step: Fig. 5 moves Low SMs to 2xLow when High
		// wins, even though 2xLow has no measurements yet.
		lo, hi := 0, len(k.plan.Levels)-1
		if k.perf[lo].blocks > 0 && k.perf[hi].blocks > 0 {
			if k.perf[hi].avg() < k.perf[lo].avg() && cur < hi && k.perf[cur+1].blocks == 0 {
				return cur + 1
			}
			if k.perf[lo].avg() < k.perf[hi].avg() && cur > lo && k.perf[cur-1].blocks == 0 {
				return cur - 1
			}
		}
	}
	return best
}

func (k *KernelState) avgOrInf(i int) float64 {
	if k.perf[i].blocks == 0 {
		return 1e300
	}
	return k.perf[i].avg()
}

// FinishLaunch records the best level as the starting point for the
// next invocation of the same named kernel.
func (k *KernelState) FinishLaunch() {
	best, bestAvg := -1, 1e300
	for i := range k.perf {
		if k.perf[i].blocks > 0 && k.perf[i].avg() < bestAvg {
			best, bestAvg = i, k.perf[i].avg()
		}
	}
	if best >= 0 {
		k.started = best
	}
}

// BestLevel returns the best measured level index, or -1.
func (k *KernelState) BestLevel() int {
	best, bestAvg := -1, 1e300
	for i := range k.perf {
		if k.perf[i].blocks > 0 && k.perf[i].avg() < bestAvg {
			best, bestAvg = i, k.perf[i].avg()
		}
	}
	return best
}

// Blocks returns how many thread blocks have been measured at a level.
func (k *KernelState) Blocks(levelIdx int) int { return k.perf[levelIdx].blocks }

// Plan returns the plan the state machine is bound to.
func (k *KernelState) Plan() *Plan { return k.plan }

// NearestLevel returns the ladder index whose stack size is closest to
// the requested level's intent (exact match when present). Rounding can
// merge adjacent ladder points, so a forced "4xLow" resolves to the
// nearest distinct allocation rather than silently falling back to Low.
func (p *Plan) NearestLevel(l Level) int {
	if i := p.LevelIndex(l); i >= 0 {
		return i
	}
	want := 0
	switch l.Kind {
	case KindLow:
		want = p.Levels[0].StackSlots
	case KindHigh:
		return len(p.Levels) - 1
	case KindNxLow:
		want = p.Levels[0].StackSlots * l.N
	}
	best, bestDiff := 0, 1<<30
	for i, x := range p.Levels {
		d := x.StackSlots - want
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			best, bestDiff = i, d
		}
	}
	return best
}
