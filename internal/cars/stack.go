package cars

import "fmt"

// SpillWindowSlots bounds the local-memory addresses trap spills use:
// absolute stack slot s spills to local word (s mod SpillWindowSlots),
// so repeated call/return cycles at the same depth reuse the same
// addresses (and cache lines), as a real software stack would. The
// window comfortably exceeds any stack extent our workloads reach;
// EnsureSpace reports an error if a live stack would alias itself.
const SpillWindowSlots = 4096

// Frame is one function's register frame on a warp's register stack:
// the saved-RFP slot followed by the renamed callee-saved registers.
type Frame struct {
	Start    int // absolute slot of the saved-RFP
	End      int // one past the last slot (grows with PUSH)
	SavedRFP int // caller's RFP value
	Spilled  bool
}

// Slots returns the frame's size in warp-register slots.
func (f Frame) Slots() int { return f.End - f.Start }

// SpillOp describes trap-injected memory traffic the core must perform:
// a contiguous run of register-stack slots moving to or from the local
// memory spill window.
type SpillOp struct {
	Fill      bool // false = spill (store), true = fill (load)
	StartSlot int  // absolute slot index of the first slot
	Count     int  // number of slots (each one warp-wide register)
}

// Stack is the per-warp CARS register stack state: the RFP and RSP
// pointers (§III-A), the live frame list, and the circular spill window
// (Fig. 6). Pointer values are absolute (monotonic within a call tree);
// physical register-stack indices are absolute mod Slots.
type Stack struct {
	Slots  int // hardware register-stack capacity (slots)
	RSP    int // absolute top of stack
	RFP    int // absolute current frame pointer
	Bottom int // lowest register-resident absolute slot
	MaxRSP int // high-water mark of RSP over the warp's lifetime

	frames []Frame
}

// Reset prepares the stack for a fresh warp with the given capacity.
func (s *Stack) Reset(slots int) {
	s.Slots = slots
	s.RSP, s.RFP, s.Bottom = 0, 0, 0
	s.MaxRSP = 0
	s.frames = s.frames[:0]
}

// Free returns the register-resident capacity still available.
func (s *Stack) Free() int { return s.Slots - (s.RSP - s.Bottom) }

// Depth returns the live frame count.
func (s *Stack) Depth() int { return len(s.frames) }

// RenameLen returns RSP-RFP: how many callee-saved registers are
// currently renamed. An architectural register R(16+k) with
// k < RenameLen resolves to stack slot RFP+k (§III-A).
func (s *Stack) RenameLen() int { return s.RSP - s.RFP }

// SlotFor returns the physical register-stack index for architectural
// callee-saved offset k (R16 has k=0), valid when k < RenameLen().
func (s *Stack) SlotFor(k int) int { return (s.RFP + k) % s.Slots }

// PhysSlot maps an absolute slot index to its physical position.
func (s *Stack) PhysSlot(abs int) int { return abs % s.Slots }

// SpillAddrSlot maps an absolute slot to its local-memory spill-window
// word index.
func SpillAddrSlot(abs int) int { return abs % SpillWindowSlots }

// EnsureSpace makes room for a call frame of fru slots, spilling bottom
// frames in wrap-around fashion if needed (Fig. 6). It returns the
// spill operations the core must perform (possibly none). The returned
// ops move whole frames; the trap handler translates them to local
// stores.
func (s *Stack) EnsureSpace(fru int) ([]SpillOp, error) {
	if fru > s.Slots {
		return nil, fmt.Errorf("cars: frame of %d slots exceeds stack capacity %d", fru, s.Slots)
	}
	var ops []SpillOp
	for s.Free() < fru {
		// Spill the oldest register-resident frame.
		var victim *Frame
		for i := range s.frames {
			if !s.frames[i].Spilled {
				victim = &s.frames[i]
				break
			}
		}
		if victim == nil {
			return nil, fmt.Errorf("cars: no frame to spill (free=%d, need=%d)", s.Free(), fru)
		}
		if s.RSP-victim.Start > SpillWindowSlots {
			return nil, fmt.Errorf("cars: stack extent %d exceeds spill window", s.RSP-victim.Start)
		}
		victim.Spilled = true
		ops = append(ops, SpillOp{StartSlot: victim.Start, Count: victim.Slots()})
		s.Bottom = victim.End
	}
	return ops, nil
}

// Call performs the register-stack side of PUSHRFP + CALL: push the
// caller's RFP and open a new frame. Space for the full FRU must have
// been ensured beforehand.
func (s *Stack) Call() {
	s.frames = append(s.frames, Frame{Start: s.RSP, End: s.RSP + 1, SavedRFP: s.RFP})
	s.RSP++
	s.RFP = s.RSP
	if s.RSP > s.MaxRSP {
		s.MaxRSP = s.RSP
	}
}

// Push allocates-and-renames n callee-saved registers in the current
// frame (the callee's PUSH micro-op).
func (s *Stack) Push(n int) error {
	if len(s.frames) == 0 {
		return fmt.Errorf("cars: PUSH outside any frame")
	}
	if s.Free() < n {
		return fmt.Errorf("cars: PUSH %d with only %d free (space not ensured)", n, s.Free())
	}
	s.RSP += n
	s.frames[len(s.frames)-1].End = s.RSP
	if s.RSP > s.MaxRSP {
		s.MaxRSP = s.RSP
	}
	return nil
}

// Pop releases n renamed registers (the callee's POP micro-op).
func (s *Stack) Pop(n int) error {
	if s.RSP-n < s.RFP {
		return fmt.Errorf("cars: POP %d below frame pointer", n)
	}
	s.RSP -= n
	return nil
}

// Ret performs the register-stack side of a full return: RSP returns to
// the frame pointer, the caller's RFP is restored from the saved slot,
// and the frame is released. If the newly exposed caller frame was
// spilled, Ret returns the fill operation required to restore it.
func (s *Stack) Ret() (fill *SpillOp, err error) {
	if len(s.frames) == 0 {
		return nil, fmt.Errorf("cars: RET with no frame")
	}
	f := s.frames[len(s.frames)-1]
	s.frames = s.frames[:len(s.frames)-1]
	s.RSP = s.RFP
	s.RFP = f.SavedRFP
	s.RSP = f.Start // release the saved-RFP slot too
	if s.Bottom > s.RSP {
		s.Bottom = s.RSP
	}
	if len(s.frames) == 0 {
		return nil, nil
	}
	top := &s.frames[len(s.frames)-1]
	if !top.Spilled {
		return nil, nil
	}
	// Returning into a spilled frame: every deeper frame is spilled too
	// (eviction is bottom-up), so the live region is empty and the frame
	// always fits. Fill it back (the paper's "filled back when the
	// corresponding function is back in control").
	top.Spilled = false
	s.Bottom = top.Start
	return &SpillOp{Fill: true, StartSlot: top.Start, Count: top.Slots()}, nil
}

// TopFrame returns the innermost live frame, or nil.
func (s *Stack) TopFrame() *Frame {
	if len(s.frames) == 0 {
		return nil
	}
	return &s.frames[len(s.frames)-1]
}

// CheckInvariants validates structural invariants; tests call this
// after every operation.
func (s *Stack) CheckInvariants() error {
	if s.RSP < s.RFP {
		return fmt.Errorf("cars: RSP %d < RFP %d", s.RSP, s.RFP)
	}
	if s.Bottom > s.RSP {
		return fmt.Errorf("cars: Bottom %d > RSP %d", s.Bottom, s.RSP)
	}
	if s.RSP-s.Bottom > s.Slots {
		return fmt.Errorf("cars: resident %d exceeds capacity %d", s.RSP-s.Bottom, s.Slots)
	}
	prevEnd := -1
	seenResident := false
	for i, f := range s.frames {
		if f.Start >= f.End {
			return fmt.Errorf("cars: frame %d empty [%d,%d)", i, f.Start, f.End)
		}
		if prevEnd >= 0 && f.Start != prevEnd {
			return fmt.Errorf("cars: frame %d not contiguous (start %d, prev end %d)", i, f.Start, prevEnd)
		}
		prevEnd = f.End
		if f.Spilled && seenResident {
			return fmt.Errorf("cars: spilled frame %d above a resident frame", i)
		}
		if !f.Spilled {
			seenResident = true
			if f.Start < s.Bottom {
				return fmt.Errorf("cars: resident frame %d starts below Bottom", i)
			}
		}
	}
	return nil
}

// CallWindow opens a fixed-size register window for a call, the classic
// SPARC-style alternative to CARS the paper's related work discusses
// (§VII). Every frame consumes exactly size slots regardless of the
// callee's actual register usage — the "wasted registers" that made
// register windows unattractive on GPUs, measurable here against CARS'
// exact-FRU frames. The saved-RFP slot is included in the window and
// all size-1 register slots are renamed immediately (the callee's
// PUSH/POP micro-ops become no-ops under windows).
func (s *Stack) CallWindow(size int) {
	s.frames = append(s.frames, Frame{Start: s.RSP, End: s.RSP + size, SavedRFP: s.RFP})
	s.RSP++
	s.RFP = s.RSP
	s.RSP = s.RFP + size - 1
	if s.RSP > s.MaxRSP {
		s.MaxRSP = s.RSP
	}
}
